package routing

import (
	"testing"
	"time"

	"liteworp/internal/field"
	"liteworp/internal/medium"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// Tests for dead next-hop eviction: MaxSendFailures consecutive MAC-level
// send failures toward a neighbor evict every route through it and push the
// failing traffic back into discovery.

// failingSender fakes the medium: unicasts to hops in `dead` fail.
type failingSender struct {
	dead map[field.NodeID]bool
	sent []*packet.Packet
}

func (f *failingSender) send(p *packet.Packet) error {
	f.sent = append(f.sent, p)
	if p.Receiver != packet.Broadcast && f.dead[p.Receiver] {
		return medium.ErrLinkDown
	}
	return nil
}

func (f *failingSender) countType(t packet.Type) int {
	n := 0
	for _, p := range f.sent {
		if p.Type == t {
			n++
		}
	}
	return n
}

// installTestRoute gives the router a cached route via a synthetic REP.
func installTestRoute(r *Router, route ...field.NodeID) {
	r.installRoute(&packet.Packet{
		Type: packet.TypeRouteReply, Origin: route[0], FinalDest: route[0],
		Sender: route[1], PrevHop: route[1], Receiver: route[0], Route: route,
	})
}

func TestDeadNextHopEvictsAndRediscovers(t *testing.T) {
	k := sim.New(1)
	fs := &failingSender{dead: map[field.NodeID]bool{2: true}}
	var deadHops []field.NodeID
	r := New(k, 1, Config{MaxSendFailures: 3}, fs.send, Events{
		DeadNextHop: func(next field.NodeID, evicted int) {
			deadHops = append(deadHops, next)
			if evicted != 2 {
				t.Errorf("evicted = %d routes, want 2", evicted)
			}
		},
	})
	installTestRoute(r, 1, 2, 4)
	installTestRoute(r, 1, 2, 5) // second route through the same dead hop
	if !r.HasRoute(4) || !r.HasRoute(5) {
		t.Fatal("setup: routes not installed")
	}

	for i := 0; i < 3; i++ {
		if err := r.Send(4, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if i < 2 && !r.HasRoute(4) {
			t.Fatalf("route evicted after only %d failures", i+1)
		}
	}
	if r.HasRoute(4) || r.HasRoute(5) {
		t.Fatal("routes through dead hop 2 not evicted after 3 failures")
	}
	if len(deadHops) != 1 || deadHops[0] != 2 {
		t.Fatalf("DeadNextHop events = %v, want [2]", deadHops)
	}
	st := r.Stats()
	if st.SendFailures != 3 || st.DeadHopEvictions != 1 {
		t.Fatalf("stats = %+v, want 3 send failures, 1 eviction", st)
	}
	// The failing payload re-entered discovery: a fresh REQ went out.
	if got := fs.countType(packet.TypeRouteRequest); got != 1 {
		t.Fatalf("route requests after eviction = %d, want 1", got)
	}
	if st.RequestsOriginated != 1 {
		t.Fatalf("RequestsOriginated = %d, want 1", st.RequestsOriginated)
	}
}

func TestSuccessfulSendResetsFailureCounter(t *testing.T) {
	k := sim.New(1)
	fs := &failingSender{dead: map[field.NodeID]bool{2: true}}
	r := New(k, 1, Config{MaxSendFailures: 3}, fs.send, Events{})
	installTestRoute(r, 1, 2, 4)

	for i := 0; i < 2; i++ {
		_ = r.Send(4, []byte("x"))
	}
	fs.dead[2] = false
	_ = r.Send(4, []byte("x")) // success: counter resets
	fs.dead[2] = true
	for i := 0; i < 2; i++ {
		_ = r.Send(4, []byte("x"))
	}
	if !r.HasRoute(4) {
		t.Fatal("route evicted despite interleaved success (counter must be consecutive)")
	}
	_ = r.Send(4, []byte("x"))
	if r.HasRoute(4) {
		t.Fatal("route survived the threshold failure")
	}
}

func TestNegativeMaxSendFailuresDisablesEviction(t *testing.T) {
	k := sim.New(1)
	fs := &failingSender{dead: map[field.NodeID]bool{2: true}}
	r := New(k, 1, Config{MaxSendFailures: -1}, fs.send, Events{})
	installTestRoute(r, 1, 2, 4)
	for i := 0; i < 10; i++ {
		_ = r.Send(4, []byte("x"))
	}
	if !r.HasRoute(4) {
		t.Fatal("eviction ran with MaxSendFailures disabled")
	}
}

func TestForwarderCountsFailuresPerHop(t *testing.T) {
	// An intermediate forwarder also notices the MAC failures; in HopByHop
	// mode its forwarding entries through the dead hop are dropped.
	k := sim.New(1)
	fs := &failingSender{dead: map[field.NodeID]bool{4: true}}
	r := New(k, 2, Config{MaxSendFailures: 2, HopByHop: true}, fs.send, Events{})
	r.setForward(9, 4)
	if _, ok := r.NextHop(9); !ok {
		t.Fatal("setup: forward entry missing")
	}
	data := &packet.Packet{
		Type: packet.TypeData, Origin: 1, FinalDest: 9,
		Sender: 1, PrevHop: 1, Receiver: 2, Payload: []byte("x"),
	}
	for i := 0; i < 2; i++ {
		if err := r.HandleData(data.Clone()); err == nil {
			t.Fatal("forward over dead link reported success")
		}
	}
	if _, ok := r.NextHop(9); ok {
		t.Fatal("forwarding entry through dead hop not dropped")
	}
}

func TestCrashRecoveryOverMedium(t *testing.T) {
	// Full loop over the real medium: node 2 (the source's first hop)
	// crashes, the source's sends come back ErrLinkDown, the route is
	// evicted, rediscovery fails while 2 is down, and once 2 reboots a
	// fresh discovery re-establishes delivery.
	var delivered int
	h := newHarness(t, chain(t, 4), 5, Config{MaxSendFailures: 3, RequestTimeout: time.Second, MaxRetries: 1},
		func(id field.NodeID) Events {
			if id != 4 {
				return Events{}
			}
			return Events{DataDelivered: func(*packet.Packet) { delivered++ }}
		})
	src := h.routers[1]
	if err := src.Send(4, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 || !src.HasRoute(4) {
		t.Fatalf("setup: delivered=%d, HasRoute=%v", delivered, src.HasRoute(4))
	}

	if err := h.med.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = src.Send(4, []byte("b"))
		if err := h.kernel.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if src.HasRoute(4) {
		t.Fatal("route through crashed hop not evicted")
	}
	// Let the doomed rediscovery run out of retries while 2 is down.
	if err := h.kernel.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := h.med.SetDown(2, false); err != nil {
		t.Fatal(err)
	}
	if err := src.Send(4, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d after reboot, want 2 (recovery failed)", delivered)
	}
}
