package routing

import (
	"errors"
	"testing"
	"time"

	"liteworp/internal/field"
	"liteworp/internal/medium"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// harness runs plain routers (no LITEWORP checks) over a medium.
type harness struct {
	kernel  *sim.Kernel
	topo    *field.Field
	med     *medium.Medium
	routers map[field.NodeID]*Router
}

func chain(t testing.TB, n int) *field.Field {
	t.Helper()
	f := field.New(float64(n*20+40), 40, 30)
	for i := 1; i <= n; i++ {
		if err := f.Place(field.NodeID(i), field.Point{X: float64(i * 20), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func newHarness(t testing.TB, topo *field.Field, seed int64, cfg Config, events func(field.NodeID) Events) *harness {
	t.Helper()
	k := sim.New(seed)
	med := medium.New(k, topo, medium.Config{BandwidthBps: 250_000})
	h := &harness{kernel: k, topo: topo, med: med, routers: make(map[field.NodeID]*Router)}
	for _, id := range topo.IDs() {
		id := id
		var ev Events
		if events != nil {
			ev = events(id)
		}
		rt := New(k, id, cfg, med.Broadcast, ev)
		h.routers[id] = rt
		if err := med.Attach(id, func(p *packet.Packet) { dispatch(rt, p) }); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// dispatch is the minimal node layer: route REQ floods and frames addressed
// to this node into the router.
func dispatch(rt *Router, p *packet.Packet) {
	switch p.Type {
	case packet.TypeRouteRequest:
		rt.HandleRouteRequest(p)
	case packet.TypeRouteReply:
		if p.Receiver == rt.Self() {
			rt.HandleRouteReply(p)
		}
	case packet.TypeData:
		if p.Receiver == rt.Self() {
			_ = rt.HandleData(p)
		}
	}
}

func TestEndToEndDelivery(t *testing.T) {
	var delivered []*packet.Packet
	h := newHarness(t, chain(t, 5), 1, Config{}, func(id field.NodeID) Events {
		if id != 5 {
			return Events{}
		}
		return Events{DataDelivered: func(p *packet.Packet) { delivered = append(delivered, p) }}
	})
	if err := h.routers[1].Send(5, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(delivered))
	}
	p := delivered[0]
	if string(p.Payload) != "payload" {
		t.Fatalf("payload = %q", p.Payload)
	}
	wantRoute := []field.NodeID{1, 2, 3, 4, 5}
	if len(p.Route) != len(wantRoute) {
		t.Fatalf("route = %v, want %v", p.Route, wantRoute)
	}
	for i := range wantRoute {
		if p.Route[i] != wantRoute[i] {
			t.Fatalf("route = %v, want %v", p.Route, wantRoute)
		}
	}
	// The last transmitter is node 4, which announces it received the
	// packet from node 3.
	if p.Sender != 4 || p.PrevHop != 3 {
		t.Fatalf("last hop sender=%d prev=%d, want 4,3", p.Sender, p.PrevHop)
	}
}

func TestRouteEstablishedEvent(t *testing.T) {
	var routes [][]field.NodeID
	h := newHarness(t, chain(t, 4), 2, Config{}, func(id field.NodeID) Events {
		if id != 1 {
			return Events{}
		}
		return Events{RouteEstablished: func(dest field.NodeID, route []field.NodeID) {
			routes = append(routes, route)
		}}
	})
	if err := h.routers[1].Send(4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Fatalf("RouteEstablished fired %d times", len(routes))
	}
	if !h.routers[1].HasRoute(4) {
		t.Fatal("route not cached")
	}
	if got := h.routers[1].Route(4); len(got) != 4 {
		t.Fatalf("Route = %v", got)
	}
}

func TestEachNodeForwardsRequestOnce(t *testing.T) {
	h := newHarness(t, chain(t, 6), 3, Config{}, nil)
	if err := h.routers[1].Send(6, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, rt := range h.routers {
		st := rt.Stats()
		if id == 1 || id == 6 {
			continue
		}
		if st.RequestsForwarded != 1 {
			t.Fatalf("node %d forwarded REQ %d times, want 1", id, st.RequestsForwarded)
		}
	}
	if st := h.routers[6].Stats(); st.RepliesOriginated != 1 {
		t.Fatalf("destination sent %d replies, want 1", st.RepliesOriginated)
	}
}

func TestCachedRouteAvoidsRediscovery(t *testing.T) {
	h := newHarness(t, chain(t, 4), 4, Config{}, nil)
	if err := h.routers[1].Send(4, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	reqs := h.routers[1].Stats().RequestsOriginated
	if err := h.routers[1].Send(4, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.routers[1].Stats().RequestsOriginated; got != reqs {
		t.Fatalf("cached send triggered rediscovery: %d -> %d", reqs, got)
	}
	if got := h.routers[4].Stats().DataDelivered; got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
}

func TestRouteEviction(t *testing.T) {
	evicted := 0
	cfg := Config{RouteTimeout: 5 * time.Second}
	h := newHarness(t, chain(t, 3), 5, cfg, func(id field.NodeID) Events {
		if id != 1 {
			return Events{}
		}
		return Events{RouteEvicted: func(field.NodeID) { evicted++ }}
	})
	if err := h.routers[1].Send(3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !h.routers[1].HasRoute(3) {
		t.Fatal("route missing before timeout")
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.routers[1].HasRoute(3) {
		t.Fatal("route survived timeout")
	}
	if evicted != 1 {
		t.Fatalf("RouteEvicted fired %d times", evicted)
	}
	// A new send re-discovers.
	before := h.routers[1].Stats().RequestsOriginated
	if err := h.routers[1].Send(3, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.routers[1].Stats().RequestsOriginated <= before {
		t.Fatal("no rediscovery after eviction")
	}
}

func TestDiscoveryFailureReportsSendFailed(t *testing.T) {
	// Two disconnected islands: 1-2 and a far-away 3.
	f := field.New(1000, 40, 30)
	for id, x := range map[field.NodeID]float64{1: 0, 2: 20, 3: 900} {
		if err := f.Place(id, field.Point{X: x, Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	var failedDest field.NodeID
	var discarded int
	cfg := Config{RequestTimeout: time.Second, MaxRetries: 1}
	h := newHarness(t, f, 6, cfg, func(id field.NodeID) Events {
		if id != 1 {
			return Events{}
		}
		return Events{SendFailed: func(d field.NodeID, n int) { failedDest = d; discarded = n }}
	})
	if err := h.routers[1].Send(3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.routers[1].Send(3, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if failedDest != 3 || discarded != 2 {
		t.Fatalf("SendFailed dest=%d n=%d, want 3,2", failedDest, discarded)
	}
	if st := h.routers[1].Stats(); st.SendsFailed != 2 {
		t.Fatalf("SendsFailed = %d", st.SendsFailed)
	}
	// Retried once => two REQ floods.
	if st := h.routers[1].Stats(); st.RequestsOriginated != 2 {
		t.Fatalf("RequestsOriginated = %d, want 2", st.RequestsOriginated)
	}
}

func TestSendToSelfRejected(t *testing.T) {
	h := newHarness(t, chain(t, 2), 7, Config{}, nil)
	if err := h.routers[1].Send(1, []byte("x")); !errors.Is(err, ErrSelfSend) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueFull(t *testing.T) {
	cfg := Config{MaxQueue: 2, RequestTimeout: time.Hour}
	// Disconnected destination so discovery never resolves.
	f := field.New(1000, 40, 30)
	f.Place(1, field.Point{X: 0, Y: 0})
	f.Place(2, field.Point{X: 900, Y: 0})
	h := newHarness(t, f, 8, cfg, nil)
	if err := h.routers[1].Send(2, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.routers[1].Send(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := h.routers[1].Send(2, []byte("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueuedPayloadsFlushOnRoute(t *testing.T) {
	delivered := 0
	h := newHarness(t, chain(t, 4), 9, Config{}, func(id field.NodeID) Events {
		if id != 4 {
			return Events{}
		}
		return Events{DataDelivered: func(*packet.Packet) { delivered++ }}
	})
	for i := 0; i < 5; i++ {
		if err := h.routers[1].Send(4, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.kernel.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5", delivered)
	}
	// Only one discovery for the burst.
	if st := h.routers[1].Stats(); st.RequestsOriginated != 1 {
		t.Fatalf("RequestsOriginated = %d, want 1", st.RequestsOriginated)
	}
}

func TestNeighborsRouteDirectly(t *testing.T) {
	delivered := 0
	h := newHarness(t, chain(t, 2), 10, Config{}, func(id field.NodeID) Events {
		if id != 2 {
			return Events{}
		}
		return Events{DataDelivered: func(*packet.Packet) { delivered++ }}
	})
	if err := h.routers[1].Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("neighbor delivery failed")
	}
	route := h.routers[1].Route(2)
	if len(route) != 2 || route[0] != 1 || route[1] != 2 {
		t.Fatalf("route = %v", route)
	}
}

func TestHandleDataNotOnRoute(t *testing.T) {
	h := newHarness(t, chain(t, 3), 11, Config{}, nil)
	p := &packet.Packet{
		Type: packet.TypeData, Seq: 1, Origin: 1, FinalDest: 3,
		Sender: 1, PrevHop: 1, Receiver: 2,
		Route: []field.NodeID{1, 9, 3}, // node 2 not on route
	}
	if err := h.routers[2].HandleData(p); !errors.Is(err, ErrNotOnRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvictRouteManually(t *testing.T) {
	h := newHarness(t, chain(t, 3), 12, Config{}, nil)
	if err := h.routers[1].Send(3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !h.routers[1].HasRoute(3) {
		t.Fatal("no route")
	}
	h.routers[1].EvictRoute(3)
	if h.routers[1].HasRoute(3) {
		t.Fatal("route survived manual eviction")
	}
	if got := h.routers[1].CachedDestinations(); len(got) != 0 {
		t.Fatalf("CachedDestinations = %v", got)
	}
	// Evicting again is a no-op.
	h.routers[1].EvictRoute(3)
}

func TestDataForwardedEventAndPrevHopAnnouncement(t *testing.T) {
	type fwd struct {
		sender, prev, next field.NodeID
	}
	var fwds []fwd
	h := newHarness(t, chain(t, 4), 13, Config{}, func(id field.NodeID) Events {
		return Events{DataForwarded: func(p *packet.Packet, next field.NodeID) {
			fwds = append(fwds, fwd{sender: p.Sender, prev: p.PrevHop, next: next})
		}}
	})
	if err := h.routers[1].Send(4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fwds) != 2 {
		t.Fatalf("forwards = %v, want 2 (nodes 2 and 3)", fwds)
	}
	// Node 2 forwards announcing prev hop 1; node 3 announces prev hop 2.
	if fwds[0] != (fwd{sender: 2, prev: 1, next: 3}) {
		t.Fatalf("first forward = %+v", fwds[0])
	}
	if fwds[1] != (fwd{sender: 3, prev: 2, next: 4}) {
		t.Fatalf("second forward = %+v", fwds[1])
	}
}

func TestDeterministicRouting(t *testing.T) {
	run := func() Stats {
		h := newHarness(t, chain(t, 6), 42, Config{}, nil)
		if err := h.routers[1].Send(6, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := h.kernel.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return h.routers[1].Stats()
	}
	if run() != run() {
		t.Fatal("routing nondeterministic under equal seeds")
	}
}

func TestGridTopologyShortishRoutes(t *testing.T) {
	// 4x4 grid, 20m spacing, range 30 (horizontal/vertical + diagonal links).
	f := field.New(200, 200, 30)
	id := field.NodeID(1)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if err := f.Place(id, field.Point{X: float64(x * 20), Y: float64(y * 20)}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	delivered := 0
	h := newHarness(t, f, 14, Config{}, func(nid field.NodeID) Events {
		if nid != 16 {
			return Events{}
		}
		return Events{DataDelivered: func(*packet.Packet) { delivered++ }}
	})
	if err := h.routers[1].Send(16, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.kernel.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("grid delivery failed")
	}
	route := h.routers[1].Route(16)
	// Corner to corner with diagonal links is 3 hops minimum (route len 4);
	// first-arrival routing should find something close.
	if len(route) < 4 || len(route) > 7 {
		t.Fatalf("route length %d outside plausible band: %v", len(route), route)
	}
}
