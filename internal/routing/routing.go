// Package routing implements the generic on-demand shortest-path routing
// protocol the paper evaluates LITEWORP on: route requests (REQ) flooded
// through the network accumulating a source route, route replies (REP)
// unicast back along the reverse path by the destination, a route cache
// with a timeout (TOutRoute), and source-routed data forwarding. Every
// forwarder explicitly announces the immediate source of the packet it
// forwards (the PrevHop field) — the hook local monitoring needs.
//
// The router is transport only: neighbor checks, monitoring and attacker
// behavior are composed around it by the node layer, which decides which
// received frames reach the router's Handle* methods.
package routing

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"liteworp/internal/field"
	"liteworp/internal/flatmap"
	"liteworp/internal/neighbor"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// Config tunes the routing protocol.
type Config struct {
	// RouteTimeout is TOutRoute: cached routes are evicted after this
	// (paper Table 2: 50 s).
	RouteTimeout time.Duration
	// RequestTimeout is how long the source waits for a REP before
	// retrying discovery.
	RequestTimeout time.Duration
	// MaxRetries bounds rediscovery attempts per queued burst.
	MaxRetries int
	// ForwardJitter is the random backoff before rebroadcasting a REQ
	// ("during the route request forwarding, the nodes typically back off
	// for a random amount of time before forwarding"). The
	// protocol-deviation (rushing) attacker sets this to zero.
	ForwardJitter time.Duration
	// SeenTTL bounds the duplicate-suppression cache for flooded REQs.
	SeenTTL time.Duration
	// MaxQueue bounds payloads queued per destination while discovery
	// is in progress.
	MaxQueue int
	// SendRouteErrors enables RERR signaling: a forwarder that cannot
	// deliver a data packet (revoked next hop, missing table entry)
	// reports back to the source, which evicts the stale route
	// immediately instead of waiting out TOutRoute. Off by default — the
	// paper's routing has no route repair, which is what produces the
	// cached-route tail in Fig. 8; the ablation bench quantifies how much
	// of that tail RERR removes.
	SendRouteErrors bool
	// HopByHop switches data forwarding from DSR-style source routes to
	// AODV-style per-hop forwarding tables: REQ/REP still accumulate a
	// route (which is how reverse/forward table entries are learned and
	// how the source classifies the path), but data packets carry no
	// route and each forwarder consults its own table. Both on-demand
	// styles the paper names (DSR, AODV) are thereby covered.
	HopByHop bool
	// Wheel, when non-nil, is the shared expiry wheel the REQ
	// duplicate-suppression caches (seenReq/repliedReq) ride instead of one
	// kernel timer per flooded request. Nil means the router builds a
	// private wheel over its own clock. Route and forwarding-table
	// evictions are protocol-observable (they gate rediscovery) and keep
	// exact timers.
	Wheel *sim.Wheel
	// Index, when non-nil, is the node incarnation's shared dense
	// neighbor index (neighbor.Table.Index()); the per-next-hop failure
	// counters are dense slices addressed by it. Nil means the router
	// builds a private index — correct, but nbrIdx values are then not
	// shared with the watch layer.
	Index *neighbor.Index
	// MaxSendFailures is the dead next-hop threshold: after this many
	// consecutive unicast send failures (the MAC's no-ack signal — the
	// neighbor crashed or the link flapped) toward the same next hop, all
	// routes and forwarding entries through that hop are evicted and the
	// failing payload re-enters discovery. A successful send to the hop
	// resets its counter. Note this is distinct from the isolation rule:
	// sends blocked because the next hop is revoked are refused silently
	// by the node layer and never reach this counter, so the paper's
	// no-repair cached-route tail (Fig. 8) is preserved. Default 3;
	// negative disables eviction.
	MaxSendFailures int
}

// DefaultConfig returns the paper's Table 2 routing parameters.
func DefaultConfig() Config {
	return Config{
		RouteTimeout:   50 * time.Second,
		RequestTimeout: 3 * time.Second,
		MaxRetries:     2,
		ForwardJitter:  30 * time.Millisecond,
		SeenTTL:        30 * time.Second,
		MaxQueue:       64,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.RouteTimeout <= 0 {
		c.RouteTimeout = def.RouteTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = def.RequestTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = def.MaxRetries
	}
	if c.ForwardJitter < 0 {
		c.ForwardJitter = def.ForwardJitter
	}
	if c.SeenTTL <= 0 {
		c.SeenTTL = def.SeenTTL
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = def.MaxQueue
	}
	switch {
	case c.MaxSendFailures == 0:
		c.MaxSendFailures = 3
	case c.MaxSendFailures < 0:
		c.MaxSendFailures = 0
	}
	return c
}

// Events are optional observation hooks; any field may be nil.
type Events struct {
	// RouteEstablished fires at the source when a REP installs a route.
	RouteEstablished func(dest field.NodeID, route []field.NodeID)
	// DataDelivered fires at the final destination of a data packet.
	DataDelivered func(p *packet.Packet)
	// DataForwarded fires at an intermediate hop that forwarded data.
	DataForwarded func(p *packet.Packet, next field.NodeID)
	// SendFailed fires at the source when discovery exhausts retries and
	// queued payloads are discarded.
	SendFailed func(dest field.NodeID, discarded int)
	// RouteEvicted fires when a cached route times out.
	RouteEvicted func(dest field.NodeID)
	// DeadNextHop fires when consecutive send failures evict the routes
	// through a next hop; evicted counts the dropped cache entries.
	DeadNextHop func(next field.NodeID, evicted int)
	// RouteErrorReceived fires at the source when a RERR evicts a route.
	RouteErrorReceived func(dest field.NodeID)
}

// Errors.
var (
	ErrSelfSend   = errors.New("routing: destination is self")
	ErrQueueFull  = errors.New("routing: discovery queue full")
	ErrNotOnRoute = errors.New("routing: node not on packet route")
)

// cachedRoute, discoveryState and hopEntry are pooled on per-router
// freelists and dispatch their deadlines through fn, a method value bound
// once per allocated record — re-arming a recycled record schedules no new
// closure.
type cachedRoute struct {
	r       *Router
	dest    field.NodeID
	route   []field.NodeID
	evictor sim.Timer
	fn      sim.Event // prebound (*cachedRoute).expire
}

type discoveryState struct {
	r       *Router
	dest    field.NodeID
	seq     uint64
	retries int
	queue   [][]byte
	timer   sim.Timer
	fn      sim.Event // prebound (*discoveryState).timeout
}

// Stats counts router activity at one node.
type Stats struct {
	RequestsOriginated uint64
	RequestsForwarded  uint64
	RepliesOriginated  uint64
	RepliesForwarded   uint64
	RoutesEstablished  uint64
	DataOriginated     uint64
	DataForwarded      uint64
	DataDelivered      uint64
	SendsFailed        uint64
	SendFailures       uint64 // unicast transmissions the MAC reported undeliverable
	DeadHopEvictions   uint64 // next hops whose routes were evicted for send failures
	RouteErrorsSent    uint64
	RouteErrorsRelayed uint64
	RouteErrorsApplied uint64
}

// Router is one node's routing state machine.
type Router struct {
	kernel sim.Clock
	self   field.NodeID
	cfg    Config
	send   func(*packet.Packet) error
	events Events

	seq       uint64
	cache     map[field.NodeID]*cachedRoute
	discovery map[field.NodeID]*discoveryState
	// seenReq/repliedReq are the REQ duplicate-suppression caches: expiry
	// instants in open-addressed tables keyed by the packed packet identity
	// (REQ floods are the hottest lookup in the whole stack).
	seenReq    flatmap.ExpiryTable
	repliedReq flatmap.ExpiryTable
	forward    map[field.NodeID]*hopEntry // HopByHop: dest -> next hop
	// sendFails counts consecutive unicast failures per next hop, dense by
	// the shared neighbor index.
	idx       *neighbor.Index
	sendFails []int

	// seenSlot arms the expiry wheel for both suppression caches.
	seenSlot sim.WheelSlot
	// Record freelists; see the type comments above.
	freeRoutes []*cachedRoute
	freeHops   []*hopEntry
	freeDisc   []*discoveryState

	// Sorted key views, rebuilt lazily after a membership change and shared
	// between calls (the neighbor-table cached-view pattern): evictVia runs
	// per send failure and CachedDestinations per metrics pass, both on
	// usually-unchanged maps.
	destView   []field.NodeID
	destViewOK bool
	fwdView    []field.NodeID
	fwdViewOK  bool

	stats Stats
}

type hopEntry struct {
	r       *Router
	dest    field.NodeID
	next    field.NodeID
	evictor sim.Timer
	fn      sim.Event // prebound (*hopEntry).expire
}

// New creates a router for node self; send puts a frame on the air.
func New(k sim.Clock, self field.NodeID, cfg Config, send func(*packet.Packet) error, events Events) *Router {
	r := &Router{
		kernel:    k,
		self:      self,
		cfg:       cfg.withDefaults(),
		send:      send,
		events:    events,
		cache:     make(map[field.NodeID]*cachedRoute),
		discovery: make(map[field.NodeID]*discoveryState),
		forward:   make(map[field.NodeID]*hopEntry),
	}
	r.idx = r.cfg.Index
	if r.idx == nil {
		r.idx = neighbor.NewIndex()
	}
	wheel := r.cfg.Wheel
	if wheel == nil {
		wheel = sim.NewWheel(k, 0)
	}
	r.seenSlot = wheel.Register(r.sweepSeen)
	return r
}

// sweepSeen reaps expired REQ-suppression records. Readers recheck the
// stored expiry, so reclamation timing is protocol-invisible.
func (r *Router) sweepSeen(now time.Duration) int {
	return r.seenReq.Sweep(now) + r.repliedReq.Sweep(now)
}

// seenKey packs a packet identity for the suppression tables. packet.Type
// is nonzero for every real packet, so a live key never collides with the
// tables' empty sentinel.
func seenKey(k packet.Key) flatmap.Key {
	return flatmap.PackKey(uint32(k.Origin), k.Seq, uint8(k.Type))
}

// unicast transmits an addressed frame and keeps the dead next-hop
// accounting: the medium's error return models the MAC ACK timeout, so N
// consecutive failures toward the same neighbor mean the link is gone —
// evict everything routed through it rather than blackholing traffic for
// the rest of TOutRoute.
func (r *Router) unicast(next field.NodeID, p *packet.Packet) error {
	err := r.send(p)
	if r.cfg.MaxSendFailures <= 0 {
		return err
	}
	if err == nil {
		if idx, ok := r.idx.Lookup(next); ok && int(idx) < len(r.sendFails) {
			r.sendFails[idx] = 0
		}
		return nil
	}
	r.stats.SendFailures++
	idx := r.idx.Intern(next)
	for int(idx) >= len(r.sendFails) {
		r.sendFails = append(r.sendFails, 0)
	}
	r.sendFails[idx]++
	if r.sendFails[idx] >= r.cfg.MaxSendFailures {
		r.evictVia(next)
	}
	return err
}

// evictVia drops every cached route and forwarding entry whose first hop is
// next, resetting the hop's failure counter. It iterates the cached sorted
// views — snapshots that stay valid while the maps are mutated underneath
// (rebuilds allocate fresh backing).
func (r *Router) evictVia(next field.NodeID) {
	if idx, ok := r.idx.Lookup(next); ok && int(idx) < len(r.sendFails) {
		r.sendFails[idx] = 0
	}
	evicted := 0
	for _, dest := range r.destinations() {
		cr := r.cache[dest]
		if cr != nil && len(cr.route) >= 2 && cr.route[1] == next {
			cr.evictor.Cancel()
			delete(r.cache, dest)
			r.destViewOK = false
			r.recycleRoute(cr)
			evicted++
			if r.events.RouteEvicted != nil {
				r.events.RouteEvicted(dest)
			}
		}
	}
	for _, dest := range r.forwardDests() {
		if e := r.forward[dest]; e != nil && e.next == next {
			e.evictor.Cancel()
			delete(r.forward, dest)
			r.fwdViewOK = false
			r.recycleHop(e)
		}
	}
	r.stats.DeadHopEvictions++
	if r.events.DeadNextHop != nil {
		r.events.DeadNextHop(next, evicted)
	}
}

func sortedKeys[V any](m map[field.NodeID]V) []field.NodeID {
	out := make([]field.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// destinations returns the sorted cached-route keys, rebuilding the shared
// view only after a membership change. The slice is capacity-clipped: an
// append by a caller cannot scribble over the shared backing, and because
// rebuilds allocate fresh, a holder of the old view can keep iterating it
// across mutations.
func (r *Router) destinations() []field.NodeID {
	if !r.destViewOK {
		v := sortedKeys(r.cache)
		r.destView = v[:len(v):len(v)]
		r.destViewOK = true
	}
	return r.destView
}

// forwardDests is the same view over the per-hop forwarding table.
func (r *Router) forwardDests() []field.NodeID {
	if !r.fwdViewOK {
		v := sortedKeys(r.forward)
		r.fwdView = v[:len(v):len(v)]
		r.fwdViewOK = true
	}
	return r.fwdView
}

// newHop takes a forwarding entry from the freelist (or allocates one,
// binding its eviction dispatch exactly once).
func (r *Router) newHop(dest, next field.NodeID) *hopEntry {
	var e *hopEntry
	if n := len(r.freeHops); n > 0 {
		e = r.freeHops[n-1]
		r.freeHops[n-1] = nil
		r.freeHops = r.freeHops[:n-1]
	} else {
		e = &hopEntry{r: r}
		e.fn = e.expire
	}
	e.dest, e.next = dest, next
	return e
}

func (r *Router) recycleHop(e *hopEntry) {
	e.evictor = sim.Timer{}
	r.freeHops = append(r.freeHops, e)
}

// expire is the forwarding-entry timeout; the identity check fences off a
// stale deadline when the entry was refreshed in the meantime.
func (e *hopEntry) expire() {
	r := e.r
	if r.forward[e.dest] != e {
		return
	}
	delete(r.forward, e.dest)
	r.fwdViewOK = false
	r.recycleHop(e)
}

// setForward installs (or refreshes) a per-hop forwarding entry toward
// dest, expiring with the route timeout.
func (r *Router) setForward(dest, next field.NodeID) {
	if dest == r.self {
		return
	}
	if old, ok := r.forward[dest]; ok {
		old.evictor.Cancel()
		r.recycleHop(old)
	} else {
		r.fwdViewOK = false
	}
	e := r.newHop(dest, next)
	e.evictor = r.kernel.After(r.cfg.RouteTimeout, e.fn)
	r.forward[dest] = e
}

// NextHop returns the per-hop forwarding entry toward dest (HopByHop mode).
func (r *Router) NextHop(dest field.NodeID) (field.NodeID, bool) {
	e, ok := r.forward[dest]
	if !ok {
		return 0, false
	}
	return e.next, true
}

// Self returns the owning node's ID.
func (r *Router) Self() field.NodeID { return r.self }

// Stats returns a copy of the router counters.
func (r *Router) Stats() Stats { return r.stats }

// Route returns the cached route to dest, or nil.
func (r *Router) Route(dest field.NodeID) []field.NodeID {
	cr, ok := r.cache[dest]
	if !ok {
		return nil
	}
	out := make([]field.NodeID, len(cr.route))
	copy(out, cr.route)
	return out
}

// HasRoute reports whether a route to dest is cached.
func (r *Router) HasRoute(dest field.NodeID) bool {
	_, ok := r.cache[dest]
	return ok
}

func (r *Router) nextSeq() uint64 {
	r.seq++
	return r.seq
}

// Send routes a payload to dest, triggering route discovery if needed.
func (r *Router) Send(dest field.NodeID, payload []byte) error {
	if dest == r.self {
		return ErrSelfSend
	}
	if cr, ok := r.cache[dest]; ok {
		r.sendData(cr.route, payload)
		return nil
	}
	ds, ok := r.discovery[dest]
	if !ok {
		ds = r.newDiscovery(dest)
		r.discovery[dest] = ds
		r.startDiscovery(dest, ds)
	}
	if len(ds.queue) >= r.cfg.MaxQueue {
		return fmt.Errorf("%w: dest %d", ErrQueueFull, dest)
	}
	ds.queue = append(ds.queue, payload)
	return nil
}

func (r *Router) startDiscovery(dest field.NodeID, ds *discoveryState) {
	ds.seq = r.nextSeq()
	req := &packet.Packet{
		Type:      packet.TypeRouteRequest,
		Seq:       ds.seq,
		Origin:    r.self,
		FinalDest: dest,
		Sender:    r.self,
		PrevHop:   r.self,
		Receiver:  packet.Broadcast,
		Route:     []field.NodeID{r.self},
	}
	r.stats.RequestsOriginated++
	// Mark our own request as seen so a reflected copy is not reflooded.
	r.markSeen(req.Key())
	_ = r.send(req)
	ds.timer = r.kernel.After(r.cfg.RequestTimeout, ds.fn)
}

// newDiscovery takes a discovery record from the freelist (or allocates
// one, binding its timeout dispatch exactly once).
func (r *Router) newDiscovery(dest field.NodeID) *discoveryState {
	var ds *discoveryState
	if n := len(r.freeDisc); n > 0 {
		ds = r.freeDisc[n-1]
		r.freeDisc[n-1] = nil
		r.freeDisc = r.freeDisc[:n-1]
	} else {
		ds = &discoveryState{r: r}
		ds.fn = ds.timeout
	}
	ds.dest = dest
	return ds
}

func (r *Router) recycleDiscovery(ds *discoveryState) {
	for i := range ds.queue {
		ds.queue[i] = nil // release payload references now, not at reuse
	}
	ds.queue = ds.queue[:0]
	ds.retries = 0
	ds.timer = sim.Timer{}
	r.freeDisc = append(r.freeDisc, ds)
}

func (ds *discoveryState) timeout() {
	r := ds.r
	if r.discovery[ds.dest] != ds {
		return // resolved in the meantime
	}
	if ds.retries < r.cfg.MaxRetries {
		ds.retries++
		r.startDiscovery(ds.dest, ds)
		return
	}
	delete(r.discovery, ds.dest)
	r.stats.SendsFailed += uint64(len(ds.queue))
	if r.events.SendFailed != nil && len(ds.queue) > 0 {
		r.events.SendFailed(ds.dest, len(ds.queue))
	}
	r.recycleDiscovery(ds)
}

func (r *Router) markSeen(k packet.Key) {
	exp := r.kernel.Now() + r.cfg.SeenTTL
	r.seenReq.Put(seenKey(k), exp)
	r.seenSlot.Arm(exp)
}

// HandleRouteRequest processes a REQ heard from the channel. The node layer
// calls it only for frames that passed its acceptance checks.
func (r *Router) HandleRouteRequest(p *packet.Packet) {
	k := p.Key()
	if r.seenReq.Live(seenKey(k), r.kernel.Now()) {
		return // "each node broadcasts only the first route request"
	}
	r.markSeen(k)
	if p.FinalDest == r.self {
		r.answerRequest(p)
		return
	}
	if contains(p.Route, r.self) {
		return // routing loop
	}
	fwd := p.Clone()
	fwd.Route = append(fwd.Route, r.self)
	fwd.HopCount++
	fwd.PrevHop = p.Sender
	fwd.Sender = r.self
	fwd.Receiver = packet.Broadcast
	r.stats.RequestsForwarded++
	jitter := r.kernel.UniformDuration(r.cfg.ForwardJitter)
	r.kernel.After(jitter, func() { _ = r.send(fwd) })
}

func (r *Router) answerRequest(p *packet.Packet) {
	// Reply only to the first copy of each request: the first arrival
	// defines the chosen (fastest) path, which is also how the wormhole
	// captures routes.
	rk := packet.Key{Type: packet.TypeRouteReply, Origin: p.Origin, Seq: p.Seq}
	if r.repliedReq.Live(seenKey(rk), r.kernel.Now()) {
		return
	}
	exp := r.kernel.Now() + r.cfg.SeenTTL
	r.repliedReq.Put(seenKey(rk), exp)
	r.seenSlot.Arm(exp)

	fullRoute := make([]field.NodeID, 0, len(p.Route)+1)
	fullRoute = append(fullRoute, p.Route...)
	fullRoute = append(fullRoute, r.self)
	if len(fullRoute) < 2 {
		return
	}
	rep := &packet.Packet{
		Type:      packet.TypeRouteReply,
		Seq:       p.Seq, // REP shares the request's identity
		Origin:    p.Origin,
		FinalDest: p.Origin,
		Sender:    r.self,
		PrevHop:   r.self,
		Receiver:  fullRoute[len(fullRoute)-2],
		HopCount:  0,
		Route:     fullRoute,
	}
	r.stats.RepliesOriginated++
	_ = r.unicast(rep.Receiver, rep)
}

// HandleRouteReply processes a REP addressed to this node.
func (r *Router) HandleRouteReply(p *packet.Packet) {
	if p.Receiver != r.self {
		return
	}
	if p.FinalDest == r.self {
		r.installRoute(p)
		return
	}
	idx := indexOf(p.Route, r.self)
	if idx <= 0 {
		return // not on the route, or malformed
	}
	if r.cfg.HopByHop && len(p.Route) > 0 {
		// Learn both directions while relaying the REP: toward the
		// request origin via the node we hand the REP to, and toward the
		// replying destination via the node we got it from.
		r.setForward(p.FinalDest, p.Route[idx-1])
		r.setForward(p.Route[len(p.Route)-1], p.Sender)
	}
	fwd := p.Clone()
	fwd.PrevHop = p.Sender
	fwd.Sender = r.self
	fwd.Receiver = p.Route[idx-1]
	fwd.HopCount++
	r.stats.RepliesForwarded++
	_ = r.unicast(fwd.Receiver, fwd)
}

func (r *Router) installRoute(p *packet.Packet) {
	if len(p.Route) < 2 || p.Route[0] != r.self {
		return
	}
	dest := p.Route[len(p.Route)-1]
	// A reply for an older retry of the same discovery is still a usable
	// route, so no seq check here: any authentic REP terminating at dest
	// installs, first reply wins.
	ds, pending := r.discovery[dest]
	if _, exists := r.cache[dest]; exists {
		return
	}
	cr := r.newRoute(dest, p.Route)
	if r.cfg.HopByHop && len(cr.route) >= 2 {
		r.setForward(dest, cr.route[1])
	}
	cr.evictor = r.kernel.After(r.cfg.RouteTimeout, cr.fn)
	r.cache[dest] = cr
	r.destViewOK = false
	r.stats.RoutesEstablished++
	if r.events.RouteEstablished != nil {
		r.events.RouteEstablished(dest, cr.route)
	}
	if pending {
		ds.timer.Cancel()
		delete(r.discovery, dest)
		for _, payload := range ds.queue {
			r.sendData(cr.route, payload)
		}
		r.recycleDiscovery(ds)
	}
}

// newRoute takes a route record from the freelist (or allocates one,
// binding its eviction dispatch exactly once) and copies route into its
// reused backing array.
func (r *Router) newRoute(dest field.NodeID, route []field.NodeID) *cachedRoute {
	var cr *cachedRoute
	if n := len(r.freeRoutes); n > 0 {
		cr = r.freeRoutes[n-1]
		r.freeRoutes[n-1] = nil
		r.freeRoutes = r.freeRoutes[:n-1]
	} else {
		cr = &cachedRoute{r: r}
		cr.fn = cr.expire
	}
	cr.dest = dest
	cr.route = append(cr.route[:0], route...)
	return cr
}

func (r *Router) recycleRoute(cr *cachedRoute) {
	cr.evictor = sim.Timer{}
	r.freeRoutes = append(r.freeRoutes, cr)
}

// expire is the TOutRoute eviction — protocol-observable (the next Send to
// dest re-enters discovery), so it stays on an exact kernel timer. The
// identity check fences off a stale deadline after evict-and-reinstall.
func (cr *cachedRoute) expire() {
	r := cr.r
	if r.cache[cr.dest] != cr {
		return
	}
	dest := cr.dest
	delete(r.cache, dest)
	r.destViewOK = false
	r.recycleRoute(cr)
	if r.events.RouteEvicted != nil {
		r.events.RouteEvicted(dest)
	}
}

func (r *Router) sendData(route []field.NodeID, payload []byte) {
	if len(route) < 2 {
		return
	}
	dest := route[len(route)-1]
	p := &packet.Packet{
		Type:      packet.TypeData,
		Seq:       r.nextSeq(),
		Origin:    r.self,
		FinalDest: dest,
		Sender:    r.self,
		PrevHop:   r.self,
		Receiver:  route[1],
	}
	if !r.cfg.HopByHop {
		p.Route = append([]field.NodeID(nil), route...)
	}
	p.Payload = append([]byte(nil), payload...)
	r.stats.DataOriginated++
	if err := r.unicast(route[1], p); err != nil && !r.HasRoute(dest) {
		// The failure just evicted the route through the dead first hop:
		// instead of dropping the payload, re-enter discovery with it, so
		// traffic recovers on a fresh path.
		_ = r.Send(dest, payload)
	}
}

// HandleData processes a data packet addressed to this node: it delivers
// locally or forwards along the source route.
func (r *Router) HandleData(p *packet.Packet) error {
	if p.Receiver != r.self {
		return nil
	}
	if p.FinalDest == r.self {
		r.stats.DataDelivered++
		if r.events.DataDelivered != nil {
			r.events.DataDelivered(p)
		}
		return nil
	}
	var next field.NodeID
	if r.cfg.HopByHop {
		hop, ok := r.NextHop(p.FinalDest)
		if !ok {
			return fmt.Errorf("%w: node %d has no table entry for %d", ErrNotOnRoute, r.self, p.FinalDest)
		}
		next = hop
	} else {
		idx := indexOf(p.Route, r.self)
		if idx < 0 || idx+1 >= len(p.Route) {
			return fmt.Errorf("%w: node %d, route %v", ErrNotOnRoute, r.self, p.Route)
		}
		next = p.Route[idx+1]
	}
	fwd := p.Clone()
	fwd.PrevHop = p.Sender
	fwd.Sender = r.self
	fwd.Receiver = next
	fwd.HopCount++
	r.stats.DataForwarded++
	if r.events.DataForwarded != nil {
		r.events.DataForwarded(fwd, next)
	}
	return r.unicast(next, fwd)
}

// ReportBrokenRoute originates a RERR toward the data packet's source:
// this node could not forward p (next hop revoked or no table entry). The
// unreachable destination rides in FinalDest-adjacent metadata: Origin is
// this reporter, FinalDest is the data source, and the packet's Seq carries
// the unreachable destination's ID so the source knows which route to
// evict. No-op unless SendRouteErrors is enabled or the packet is not
// routable back.
func (r *Router) ReportBrokenRoute(p *packet.Packet) {
	if !r.cfg.SendRouteErrors || p.Type != packet.TypeData || p.Origin == r.self {
		return
	}
	rerr := &packet.Packet{
		Type:      packet.TypeRouteError,
		Seq:       uint64(p.FinalDest), // unreachable destination
		Origin:    r.self,
		FinalDest: p.Origin,
		Sender:    r.self,
		PrevHop:   r.self,
	}
	var next field.NodeID
	switch {
	case r.cfg.HopByHop:
		hop, ok := r.NextHop(p.Origin)
		if !ok {
			return
		}
		next = hop
	default:
		idx := indexOf(p.Route, r.self)
		if idx <= 0 {
			return
		}
		next = p.Route[idx-1]
		// Carry the reverse path so intermediates need no state.
		rerr.Route = append([]field.NodeID(nil), p.Route[:idx+1]...)
	}
	rerr.Receiver = next
	r.stats.RouteErrorsSent++
	_ = r.send(rerr)
}

// HandleRouteError processes a RERR addressed to this node: relay it
// toward the source, or — at the source — evict the dead route.
func (r *Router) HandleRouteError(p *packet.Packet) {
	if p.Receiver != r.self {
		return
	}
	if p.FinalDest == r.self {
		dest := field.NodeID(p.Seq)
		if _, ok := r.cache[dest]; ok {
			r.EvictRoute(dest)
			r.stats.RouteErrorsApplied++
			if r.events.RouteErrorReceived != nil {
				r.events.RouteErrorReceived(dest)
			}
		}
		return
	}
	// Relay toward the source.
	fwd := p.Clone()
	fwd.PrevHop = p.Sender
	fwd.Sender = r.self
	fwd.HopCount++
	switch {
	case r.cfg.HopByHop:
		hop, ok := r.NextHop(p.FinalDest)
		if !ok {
			return
		}
		fwd.Receiver = hop
	default:
		idx := indexOf(p.Route, r.self)
		if idx <= 0 {
			return
		}
		fwd.Receiver = p.Route[idx-1]
	}
	r.stats.RouteErrorsRelayed++
	_ = r.send(fwd)
}

// EvictRoute drops the cached route to dest (e.g. on link failure).
func (r *Router) EvictRoute(dest field.NodeID) {
	cr, ok := r.cache[dest]
	if !ok {
		return
	}
	cr.evictor.Cancel()
	delete(r.cache, dest)
	r.destViewOK = false
	r.recycleRoute(cr)
}

// CachedDestinations lists destinations with live routes, sorted. The
// returned slice is a shared capacity-clipped view — treat it as read-only;
// it stays valid (as a snapshot) across cache mutations.
func (r *Router) CachedDestinations() []field.NodeID {
	return r.destinations()
}

func contains(route []field.NodeID, id field.NodeID) bool {
	return indexOf(route, id) >= 0
}

func indexOf(route []field.NodeID, id field.NodeID) int {
	for i, x := range route {
		if x == id {
			return i
		}
	}
	return -1
}
