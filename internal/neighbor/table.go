// Package neighbor implements LITEWORP's secure two-hop neighbor discovery
// (paper §4.2.1) and the resulting neighbor tables.
//
// After discovery, every node knows (a) its direct neighbors and (b) the
// neighbor list of each direct neighbor. Those two structures power all of
// LITEWORP's checks: guard determination, the second-hop legitimacy check on
// forwarded packets, the rejection of packets from non-neighbors, and the
// local revocation that isolates detected attackers.
package neighbor

import (
	"fmt"
	"sort"

	"liteworp/internal/field"
)

// Status is a neighbor's standing in the table.
type Status uint8

// Neighbor states. A revoked neighbor stays in the table (so guards keep
// their topological knowledge) but no traffic is accepted from or sent to it.
// A stale neighbor has gone silent long enough that it is presumed dead
// (crashed, not malicious): guards stop expecting forwards from it, but its
// entry — and the key material behind it — is kept so the node can resume
// where it left off when it reboots and re-announces itself.
const (
	StatusActive Status = iota + 1
	StatusRevoked
	StatusStale
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusRevoked:
		return "revoked"
	case StatusStale:
		return "stale"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Entry is one direct neighbor's record. The zero Status doubles as the
// "not a direct neighbor" marker in the table's dense entry storage (an
// interned second-hop ID has a slot but no standing).
type Entry struct {
	Status Status
	// Neighbors is the neighbor's own announced neighbor list (the
	// second-hop information), sorted ascending and deduplicated. Nil
	// until the neighbor announces.
	Neighbors []field.NodeID
}

// Table is a node's first- and second-hop neighbor knowledge.
type Table struct {
	self field.NodeID
	// entries is dense by nbrIdx: entry i belongs to the i-th interned ID.
	// It is only grown on AddDirect, so second-hop-only indexes past the
	// last direct neighbor need no storage at all; in-range slots with the
	// zero Status are second-hop placeholders. Addressing by position
	// removes the entry map — and its per-entry pointers — from every
	// hot-path membership check.
	entries []Entry
	idx     *Index

	// Sorted views are rebuilt lazily after a status mutation and shared
	// between calls — the monitor consults Neighbors on every overheard
	// control packet, so re-sorting per call was a hot-path allocation.
	viewsValid  bool
	activeView  []field.NodeID
	activeIdxs  []int32
	trustedView []field.NodeID
	allView     []field.NodeID

	// The second-hop view is cached separately: it additionally depends on
	// announced neighbor sets, so SetNeighborSet invalidates it without
	// touching the membership views.
	secondValid bool
	secondView  []field.NodeID
}

// NewTable returns an empty table for node self, with a fresh dense index
// scoped to the same incarnation.
func NewTable(self field.NodeID) *Table {
	return &Table{self: self, idx: NewIndex()}
}

// entry returns the mutable record of direct neighbor id, nil if id is not
// a direct neighbor.
func (t *Table) entry(id field.NodeID) *Entry {
	i, ok := t.idx.Lookup(id)
	if !ok || int(i) >= len(t.entries) || t.entries[i].Status == 0 {
		return nil
	}
	return &t.entries[i]
}

// Index returns the table's dense neighbor index. The router, the watch
// buffer and the detector scoreboards share it, so one incarnation agrees
// on a single nbrIdx space.
func (t *Table) Index() *Index { return t.idx }

// invalidate drops the cached sorted views after any membership or status
// change. Membership changes also change what counts as a second hop.
func (t *Table) invalidate() {
	t.viewsValid = false
	t.secondValid = false
}

// views rebuilds the sorted ID views if stale. Iteration goes over the
// index's arrival-ordered ID list (every entry key is interned on
// AddDirect), not the entry map, so rebuild order is deterministic. Each
// slice is clipped to its length so a caller's append cannot scribble over
// the shared backing array.
func (t *Table) views() *Table {
	if t.viewsValid {
		return t
	}
	active := make([]field.NodeID, 0, len(t.entries))
	trusted := make([]field.NodeID, 0, len(t.entries))
	all := make([]field.NodeID, 0, len(t.entries))
	for i, id := range t.idx.IDs() {
		if i >= len(t.entries) {
			break // the tail is interned second-hop IDs, never direct
		}
		all = append(all, id)
		switch t.entries[i].Status {
		case 0:
			all = all[:len(all)-1] // second-hop placeholder slot
		case StatusActive:
			active = append(active, id)
			trusted = append(trusted, id)
		case StatusStale:
			trusted = append(trusted, id)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	sort.Slice(trusted, func(i, j int) bool { return trusted[i] < trusted[j] })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	idxs := make([]int32, len(active))
	for i, id := range active {
		j, _ := t.idx.Lookup(id)
		idxs[i] = j
	}
	t.activeView = active[:len(active):len(active)]
	t.activeIdxs = idxs[:len(idxs):len(idxs)]
	t.trustedView = trusted[:len(trusted):len(trusted)]
	t.allView = all[:len(all):len(all)]
	t.viewsValid = true
	return t
}

// Self returns the table owner's ID.
func (t *Table) Self() field.NodeID { return t.self }

// AddDirect records id as a verified direct neighbor. Adding an existing
// neighbor is a no-op (it does not clear second-hop data or revocation).
func (t *Table) AddDirect(id field.NodeID) {
	if id == t.self {
		return
	}
	i := t.idx.Intern(id)
	for len(t.entries) <= int(i) {
		t.entries = append(t.entries, Entry{})
	}
	if t.entries[i].Status == 0 {
		t.entries[i].Status = StatusActive
		t.invalidate()
	}
}

// SetNeighborSet stores the announced neighbor list of direct neighbor id
// as a sorted, deduplicated slice. It is ignored for nodes that are not
// direct neighbors. Announced IDs are interned: they are the second-hop
// neighborhood, part of the dense index's domain.
func (t *Table) SetNeighborSet(id field.NodeID, neighbors []field.NodeID) {
	if t.entry(id) == nil {
		return
	}
	set := make([]field.NodeID, 0, len(neighbors))
	for _, n := range neighbors {
		if n != id {
			set = append(set, n)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	// Dedupe in place (announcements should not repeat IDs, but the table
	// must not corrupt its binary-searched invariant if one does).
	keep := 0
	for i, n := range set {
		if i > 0 && n == set[keep-1] {
			continue
		}
		set[keep] = n
		keep++
	}
	set = set[:keep:keep]
	for _, n := range set {
		t.idx.Intern(n)
	}
	// Re-resolve after interning: entry pointers are into the dense slice
	// and must not be held across anything that could grow it.
	t.entry(id).Neighbors = set
	t.secondValid = false
}

// containsSorted reports whether id is in the ascending slice s.
func containsSorted(s []field.NodeID, id field.NodeID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// HasEntry reports whether id is in the table at all (active or revoked).
func (t *Table) HasEntry(id field.NodeID) bool {
	_, _, ok := t.Lookup(id)
	return ok
}

// Lookup returns id's dense index and status in one probe-table access —
// the hot-path combination of HasEntry/IsRevoked/IsStale plus the nbrIdx
// the dense per-neighbor state is addressed by.
func (t *Table) Lookup(id field.NodeID) (int32, Status, bool) {
	i, ok := t.idx.Lookup(id)
	if !ok || int(i) >= len(t.entries) {
		return 0, 0, false
	}
	st := t.entries[i].Status
	if st == 0 {
		return 0, 0, false
	}
	return i, st, true
}

// IsNeighbor reports whether id is an active (non-revoked) direct neighbor.
func (t *Table) IsNeighbor(id field.NodeID) bool {
	_, st, ok := t.Lookup(id)
	return ok && st == StatusActive
}

// IsRevoked reports whether id has been revoked.
func (t *Table) IsRevoked(id field.NodeID) bool {
	_, st, ok := t.Lookup(id)
	return ok && st == StatusRevoked
}

// IsStale reports whether id is marked stale (presumed crashed).
func (t *Table) IsStale(id field.NodeID) bool {
	_, st, ok := t.Lookup(id)
	return ok && st == StatusStale
}

// MarkStale moves an active neighbor to the stale state. Revoked neighbors
// stay revoked (a detected attacker that goes quiet is still an attacker).
// It reports whether the status changed.
func (t *Table) MarkStale(id field.NodeID) bool {
	e := t.entry(id)
	if e == nil || e.Status != StatusActive {
		return false
	}
	e.Status = StatusStale
	t.invalidate()
	return true
}

// Refresh moves a stale neighbor back to active — evidence of life (an
// overheard transmission, a re-announced neighbor list) reverses the
// presumed-dead verdict. Revocation is never reversed. It reports whether
// the status changed.
func (t *Table) Refresh(id field.NodeID) bool {
	e := t.entry(id)
	if e == nil || e.Status != StatusStale {
		return false
	}
	e.Status = StatusActive
	t.invalidate()
	return true
}

// Revoke marks a direct neighbor revoked. Revoking an unknown node is a
// no-op; revocation is permanent (the paper's isolation is permanent for
// static networks). It reports whether the status changed.
func (t *Table) Revoke(id field.NodeID) bool {
	e := t.entry(id)
	if e == nil || e.Status == StatusRevoked {
		return false
	}
	e.Status = StatusRevoked
	t.invalidate()
	return true
}

// Neighbors returns the active direct neighbors in ascending order. The
// slice is a shared cached view: callers must treat it as read-only (an
// append reallocates thanks to the capacity clip, but in-place writes would
// corrupt the cache).
func (t *Table) Neighbors() []field.NodeID {
	return t.views().activeView
}

// NeighborIdxs returns the dense indexes of the active direct neighbors,
// parallel to Neighbors(). Hot loops that arm per-neighbor state iterate
// both views together and skip the per-ID map lookup entirely. The slice
// is a shared read-only cached view (see Neighbors).
func (t *Table) NeighborIdxs() []int32 {
	return t.views().activeIdxs
}

// TrustedNeighbors returns the active and stale direct neighbors,
// ascending. Stale entries are presumed crashed but still trusted members;
// a neighbor-list announcement must cover them (with their MAC tag) so a
// rebooted node can verify the list and rebuild its second-hop knowledge —
// at the moment its neighbors re-announce, it is still stale in their
// tables. Revoked entries stay excluded: isolation is permanent. The
// returned slice is a shared read-only cached view (see Neighbors).
func (t *Table) TrustedNeighbors() []field.NodeID {
	return t.views().trustedView
}

// AllEntries returns every direct neighbor (active and revoked), ascending.
// The returned slice is a shared read-only cached view (see Neighbors).
func (t *Table) AllEntries() []field.NodeID {
	return t.views().allView
}

// NeighborsOf returns the announced neighbor list of direct neighbor id,
// ascending (nil if unknown or not yet announced). The slice is the
// entry's stored set: callers must treat it as read-only.
func (t *Table) NeighborsOf(id field.NodeID) []field.NodeID {
	e := t.entry(id)
	if e == nil {
		return nil
	}
	return e.Neighbors
}

// KnowsLink reports whether, to this node's knowledge, prev is a neighbor
// of sender — i.e. the claimed link prev->sender can exist. This is the
// second-hop legitimacy check: "If a node C receives a packet forwarded by
// B purporting to come from A in the previous hop, C discards the packet if
// A is not a second hop neighbor" (paper §4.2.1). A packet originated by
// the sender itself (prev == sender) is always consistent.
func (t *Table) KnowsLink(prev, sender field.NodeID) bool {
	if prev == sender {
		return true
	}
	if prev == t.self {
		// We know our own links directly.
		return t.HasEntry(sender)
	}
	e := t.entry(sender)
	if e == nil || e.Neighbors == nil {
		return false
	}
	return containsSorted(e.Neighbors, prev)
}

// IsGuardOf reports whether this node can guard the directed link x->a:
// it must be a neighbor of both ends (x itself guards all its outgoing
// links; the receiver a is not a guard of its own incoming link).
func (t *Table) IsGuardOf(x, a field.NodeID) bool {
	if a == t.self || x == a {
		return false
	}
	if x == t.self {
		return t.HasEntry(a)
	}
	return t.HasEntry(x) && t.HasEntry(a)
}

// SecondHop returns the set of second-hop neighbors: nodes announced by
// direct neighbors that are not direct neighbors or self, ascending. The
// view is cached and invalidated by membership changes and announcements;
// the returned slice is shared and read-only (see Neighbors).
func (t *Table) SecondHop() []field.NodeID {
	if t.secondValid {
		return t.secondView
	}
	var out []field.NodeID
	for _, id := range t.views().allView {
		for _, n := range t.entry(id).Neighbors {
			if n != t.self && !t.HasEntry(n) {
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	keep := 0
	for i, n := range out {
		if i > 0 && n == out[keep-1] {
			continue
		}
		out[keep] = n
		keep++
	}
	out = out[:keep:keep]
	t.secondView = out
	t.secondValid = true
	return out
}

// MemoryBytes returns the storage footprint of the table using the paper's
// cost model (§5.2): 5 bytes per direct-neighbor entry (4-byte ID plus
// 1-byte MalC) and 4 bytes per stored second-hop ID.
func (t *Table) MemoryBytes() int {
	total := 0
	for i := range t.entries {
		if t.entries[i].Status == 0 {
			continue
		}
		total += 5
		total += 4 * len(t.entries[i].Neighbors)
	}
	return total
}
