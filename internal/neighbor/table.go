// Package neighbor implements LITEWORP's secure two-hop neighbor discovery
// (paper §4.2.1) and the resulting neighbor tables.
//
// After discovery, every node knows (a) its direct neighbors and (b) the
// neighbor list of each direct neighbor. Those two structures power all of
// LITEWORP's checks: guard determination, the second-hop legitimacy check on
// forwarded packets, the rejection of packets from non-neighbors, and the
// local revocation that isolates detected attackers.
package neighbor

import (
	"fmt"
	"sort"

	"liteworp/internal/field"
)

// Status is a neighbor's standing in the table.
type Status uint8

// Neighbor states. A revoked neighbor stays in the table (so guards keep
// their topological knowledge) but no traffic is accepted from or sent to it.
// A stale neighbor has gone silent long enough that it is presumed dead
// (crashed, not malicious): guards stop expecting forwards from it, but its
// entry — and the key material behind it — is kept so the node can resume
// where it left off when it reboots and re-announces itself.
const (
	StatusActive Status = iota + 1
	StatusRevoked
	StatusStale
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusRevoked:
		return "revoked"
	case StatusStale:
		return "stale"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Entry is one direct neighbor's record.
type Entry struct {
	Status Status
	// Neighbors is the neighbor's own announced neighbor list (the
	// second-hop information).
	Neighbors map[field.NodeID]bool
}

// Table is a node's first- and second-hop neighbor knowledge.
type Table struct {
	self    field.NodeID
	entries map[field.NodeID]*Entry

	// Sorted views are rebuilt lazily after a status mutation and shared
	// between calls — the monitor consults Neighbors on every overheard
	// control packet, so re-sorting per call was a hot-path allocation.
	viewsValid  bool
	activeView  []field.NodeID
	trustedView []field.NodeID
	allView     []field.NodeID
}

// NewTable returns an empty table for node self.
func NewTable(self field.NodeID) *Table {
	return &Table{self: self, entries: make(map[field.NodeID]*Entry)}
}

// invalidate drops the cached sorted views after any membership or status
// change.
func (t *Table) invalidate() { t.viewsValid = false }

// views rebuilds the three sorted ID views if stale. Each slice is clipped
// to its length so a caller's append cannot scribble over the shared
// backing array.
func (t *Table) views() *Table {
	if t.viewsValid {
		return t
	}
	active := make([]field.NodeID, 0, len(t.entries))
	trusted := make([]field.NodeID, 0, len(t.entries))
	all := make([]field.NodeID, 0, len(t.entries))
	//lint:ordered every view slice is sorted below before it is cached
	for id, e := range t.entries {
		all = append(all, id)
		switch e.Status {
		case StatusActive:
			active = append(active, id)
			trusted = append(trusted, id)
		case StatusStale:
			trusted = append(trusted, id)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	sort.Slice(trusted, func(i, j int) bool { return trusted[i] < trusted[j] })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	t.activeView = active[:len(active):len(active)]
	t.trustedView = trusted[:len(trusted):len(trusted)]
	t.allView = all[:len(all):len(all)]
	t.viewsValid = true
	return t
}

// Self returns the table owner's ID.
func (t *Table) Self() field.NodeID { return t.self }

// AddDirect records id as a verified direct neighbor. Adding an existing
// neighbor is a no-op (it does not clear second-hop data or revocation).
func (t *Table) AddDirect(id field.NodeID) {
	if id == t.self {
		return
	}
	if _, ok := t.entries[id]; !ok {
		t.entries[id] = &Entry{Status: StatusActive}
		t.invalidate()
	}
}

// SetNeighborSet stores the announced neighbor list of direct neighbor id.
// It is ignored for nodes that are not direct neighbors.
func (t *Table) SetNeighborSet(id field.NodeID, neighbors []field.NodeID) {
	e, ok := t.entries[id]
	if !ok {
		return
	}
	set := make(map[field.NodeID]bool, len(neighbors))
	for _, n := range neighbors {
		if n != id {
			set[n] = true
		}
	}
	e.Neighbors = set
}

// HasEntry reports whether id is in the table at all (active or revoked).
func (t *Table) HasEntry(id field.NodeID) bool {
	_, ok := t.entries[id]
	return ok
}

// IsNeighbor reports whether id is an active (non-revoked) direct neighbor.
func (t *Table) IsNeighbor(id field.NodeID) bool {
	e, ok := t.entries[id]
	return ok && e.Status == StatusActive
}

// IsRevoked reports whether id has been revoked.
func (t *Table) IsRevoked(id field.NodeID) bool {
	e, ok := t.entries[id]
	return ok && e.Status == StatusRevoked
}

// IsStale reports whether id is marked stale (presumed crashed).
func (t *Table) IsStale(id field.NodeID) bool {
	e, ok := t.entries[id]
	return ok && e.Status == StatusStale
}

// MarkStale moves an active neighbor to the stale state. Revoked neighbors
// stay revoked (a detected attacker that goes quiet is still an attacker).
// It reports whether the status changed.
func (t *Table) MarkStale(id field.NodeID) bool {
	e, ok := t.entries[id]
	if !ok || e.Status != StatusActive {
		return false
	}
	e.Status = StatusStale
	t.invalidate()
	return true
}

// Refresh moves a stale neighbor back to active — evidence of life (an
// overheard transmission, a re-announced neighbor list) reverses the
// presumed-dead verdict. Revocation is never reversed. It reports whether
// the status changed.
func (t *Table) Refresh(id field.NodeID) bool {
	e, ok := t.entries[id]
	if !ok || e.Status != StatusStale {
		return false
	}
	e.Status = StatusActive
	t.invalidate()
	return true
}

// Revoke marks a direct neighbor revoked. Revoking an unknown node is a
// no-op; revocation is permanent (the paper's isolation is permanent for
// static networks). It reports whether the status changed.
func (t *Table) Revoke(id field.NodeID) bool {
	e, ok := t.entries[id]
	if !ok || e.Status == StatusRevoked {
		return false
	}
	e.Status = StatusRevoked
	t.invalidate()
	return true
}

// Neighbors returns the active direct neighbors in ascending order. The
// slice is a shared cached view: callers must treat it as read-only (an
// append reallocates thanks to the capacity clip, but in-place writes would
// corrupt the cache).
func (t *Table) Neighbors() []field.NodeID {
	return t.views().activeView
}

// TrustedNeighbors returns the active and stale direct neighbors,
// ascending. Stale entries are presumed crashed but still trusted members;
// a neighbor-list announcement must cover them (with their MAC tag) so a
// rebooted node can verify the list and rebuild its second-hop knowledge —
// at the moment its neighbors re-announce, it is still stale in their
// tables. Revoked entries stay excluded: isolation is permanent. The
// returned slice is a shared read-only cached view (see Neighbors).
func (t *Table) TrustedNeighbors() []field.NodeID {
	return t.views().trustedView
}

// AllEntries returns every direct neighbor (active and revoked), ascending.
// The returned slice is a shared read-only cached view (see Neighbors).
func (t *Table) AllEntries() []field.NodeID {
	return t.views().allView
}

// NeighborsOf returns the announced neighbor set of direct neighbor id
// (nil if unknown).
func (t *Table) NeighborsOf(id field.NodeID) map[field.NodeID]bool {
	e, ok := t.entries[id]
	if !ok {
		return nil
	}
	return e.Neighbors
}

// KnowsLink reports whether, to this node's knowledge, prev is a neighbor
// of sender — i.e. the claimed link prev->sender can exist. This is the
// second-hop legitimacy check: "If a node C receives a packet forwarded by
// B purporting to come from A in the previous hop, C discards the packet if
// A is not a second hop neighbor" (paper §4.2.1). A packet originated by
// the sender itself (prev == sender) is always consistent.
func (t *Table) KnowsLink(prev, sender field.NodeID) bool {
	if prev == sender {
		return true
	}
	if prev == t.self {
		// We know our own links directly.
		return t.HasEntry(sender)
	}
	e, ok := t.entries[sender]
	if !ok || e.Neighbors == nil {
		return false
	}
	return e.Neighbors[prev]
}

// IsGuardOf reports whether this node can guard the directed link x->a:
// it must be a neighbor of both ends (x itself guards all its outgoing
// links; the receiver a is not a guard of its own incoming link).
func (t *Table) IsGuardOf(x, a field.NodeID) bool {
	if a == t.self || x == a {
		return false
	}
	if x == t.self {
		return t.HasEntry(a)
	}
	return t.HasEntry(x) && t.HasEntry(a)
}

// SecondHop returns the set of second-hop neighbors: nodes announced by
// direct neighbors that are not direct neighbors or self, ascending.
func (t *Table) SecondHop() []field.NodeID {
	set := make(map[field.NodeID]bool)
	//lint:ordered builds a deduplicating ID set; the keys are sorted before return
	for _, e := range t.entries {
		for n := range e.Neighbors {
			if n != t.self && !t.HasEntry(n) {
				set[n] = true
			}
		}
	}
	out := make([]field.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MemoryBytes returns the storage footprint of the table using the paper's
// cost model (§5.2): 5 bytes per direct-neighbor entry (4-byte ID plus
// 1-byte MalC) and 4 bytes per stored second-hop ID.
func (t *Table) MemoryBytes() int {
	total := 0
	for _, e := range t.entries {
		total += 5
		total += 4 * len(e.Neighbors)
	}
	return total
}
