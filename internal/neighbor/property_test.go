package neighbor

import (
	"sort"
	"testing"
	"testing/quick"

	"liteworp/internal/field"
)

// opSequence drives a table with an arbitrary operation stream and checks
// invariants after every step:
//
//   - active neighbors and revoked nodes partition the entry set;
//   - Neighbors() is sorted and duplicate-free;
//   - revocation is permanent;
//   - second-hop sets never contain the announcing neighbor itself.
func TestPropertyTableInvariants(t *testing.T) {
	type op struct {
		Kind  uint8
		ID    field.NodeID
		Other field.NodeID
	}
	f := func(ops []op) bool {
		tb := NewTable(1)
		everRevoked := map[field.NodeID]bool{}
		for _, o := range ops {
			id := 2 + o.ID%32 // small id space forces interactions
			other := 2 + o.Other%32
			switch o.Kind % 4 {
			case 0:
				tb.AddDirect(id)
			case 1:
				if tb.Revoke(id) {
					everRevoked[id] = true
				}
			case 2:
				tb.SetNeighborSet(id, []field.NodeID{other, id, 1})
			case 3:
				_ = tb.KnowsLink(other, id)
			}

			// Invariants.
			active := tb.Neighbors()
			if !sort.SliceIsSorted(active, func(i, j int) bool { return active[i] < active[j] }) {
				return false
			}
			seen := map[field.NodeID]bool{}
			for _, a := range active {
				if seen[a] || tb.IsRevoked(a) || !tb.HasEntry(a) {
					return false
				}
				seen[a] = true
			}
			for r := range everRevoked {
				if !tb.IsRevoked(r) || tb.IsNeighbor(r) {
					return false // revocation must be permanent
				}
			}
			for _, e := range tb.AllEntries() {
				if nset := tb.NeighborsOf(e); containsSorted(nset, e) {
					return false // a node is never its own neighbor
				}
			}
			if tb.MemoryBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: KnowsLink is exactly "prev == sender, or prev announced by
// sender", reconstructed independently from the op stream.
func TestPropertyKnowsLinkModel(t *testing.T) {
	f := func(pairs [][2]uint8, queries [][2]uint8) bool {
		tb := NewTable(1)
		model := map[field.NodeID]map[field.NodeID]bool{}
		for _, p := range pairs {
			sender := field.NodeID(2 + p[0]%16)
			prev := field.NodeID(2 + p[1]%16)
			tb.AddDirect(sender)
			// Announce a single-member list (replaces earlier ones, as
			// re-announcement does).
			tb.SetNeighborSet(sender, []field.NodeID{prev})
			model[sender] = map[field.NodeID]bool{}
			if prev != sender {
				model[sender][prev] = true
			}
		}
		for _, q := range queries {
			sender := field.NodeID(2 + q[0]%16)
			prev := field.NodeID(2 + q[1]%16)
			want := prev == sender || model[sender][prev]
			if prev == 1 { // prev == self: we know our own links
				want = tb.HasEntry(sender)
			}
			if tb.KnowsLink(prev, sender) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
