package neighbor

import "liteworp/internal/field"

// Index interns the node IDs one station interacts with — its first- and
// second-hop neighborhood, plus any ID its detectors score — into small
// dense integers (nbrIdx). The watch layer, the router and the detector
// scoreboards address per-neighbor state by nbrIdx, so their hot-path
// storage is a contiguous slice or a flat table keyed by a 32-bit int
// instead of a map keyed by field.NodeID.
//
// The index is append-only: an ID, once interned, keeps its nbrIdx for the
// lifetime of the index. Its lifetime is one node incarnation — it is
// created with the incarnation's neighbor table and discarded with it on a
// crash, so a rebooted node starts from a fresh, empty index (stale dense
// state cannot leak across incarnations). Interning order follows kernel
// event order, which makes nbrIdx assignment — and every iteration over
// dense state — deterministic per seed.
// The reverse map is its own small open-addressed probe table rather than
// a Go map: Lookup sits on the per-transmission hot path (every overheard
// packet resolves its sender), and at O(degree) entries a linear probe
// over two contiguous word slices beats the generic map machinery that
// profiling showed at ~10% of CPU. Empty slots are marked by idxs[i] < 0,
// so NodeID 0 needs no special casing.
type Index struct {
	ids  []field.NodeID
	keys []field.NodeID // probe-table keys, parallel to idxs
	idxs []int32        // probe-table values; -1 marks an empty slot
	mask uint32
}

// indexMinCap is the initial probe-table capacity: past the typical
// first-hop degree so a node's usual neighborhood interns without a grow.
const indexMinCap = 32

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{
		keys: make([]field.NodeID, indexMinCap),
		idxs: make([]int32, indexMinCap),
		mask: indexMinCap - 1,
	}
	for i := range ix.idxs {
		ix.idxs[i] = -1
	}
	return ix
}

// idHash spreads a NodeID over the probe space (Murmur3 fmix32).
func idHash(id field.NodeID) uint32 {
	h := uint32(id)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Intern returns id's dense index, assigning the next one on first sight.
func (ix *Index) Intern(id field.NodeID) int32 {
	slot := idHash(id) & ix.mask
	for ix.idxs[slot] >= 0 {
		if ix.keys[slot] == id {
			return ix.idxs[slot]
		}
		slot = (slot + 1) & ix.mask
	}
	i := int32(len(ix.ids))
	ix.ids = append(ix.ids, id)
	ix.keys[slot] = id
	ix.idxs[slot] = i
	if len(ix.ids) >= len(ix.keys)-len(ix.keys)/4 { // grow at 3/4 load
		ix.grow()
	}
	return i
}

// Lookup returns id's dense index without interning it.
func (ix *Index) Lookup(id field.NodeID) (int32, bool) {
	slot := idHash(id) & ix.mask
	for {
		v := ix.idxs[slot]
		if v < 0 {
			return 0, false
		}
		if ix.keys[slot] == id {
			return v, true
		}
		slot = (slot + 1) & ix.mask
	}
}

// grow doubles the probe table and reinserts every interned ID. Entries
// are never deleted (the index is append-only), so a plain reinsert loop
// over ids suffices.
func (ix *Index) grow() {
	newCap := len(ix.keys) * 2
	ix.keys = make([]field.NodeID, newCap)
	ix.idxs = make([]int32, newCap)
	ix.mask = uint32(newCap - 1)
	for i := range ix.idxs {
		ix.idxs[i] = -1
	}
	for i, id := range ix.ids {
		slot := idHash(id) & ix.mask
		for ix.idxs[slot] >= 0 {
			slot = (slot + 1) & ix.mask
		}
		ix.keys[slot] = id
		ix.idxs[slot] = int32(i)
	}
}

// ID maps a dense index back to the node ID that owns it.
func (ix *Index) ID(i int32) field.NodeID { return ix.ids[i] }

// Len returns how many IDs have been interned.
func (ix *Index) Len() int { return len(ix.ids) }

// IDs returns the interned IDs in interning (arrival) order. The slice is
// the index's backing storage: callers must treat it as read-only.
func (ix *Index) IDs() []field.NodeID { return ix.ids }
