package neighbor

import (
	"testing"

	"liteworp/internal/field"
)

func TestIndexInternStable(t *testing.T) {
	ix := NewIndex()
	a := ix.Intern(7)
	b := ix.Intern(3)
	if a != 0 || b != 1 {
		t.Fatalf("interning order not dense: got %d, %d", a, b)
	}
	if again := ix.Intern(7); again != a {
		t.Fatalf("re-interning moved the index: %d != %d", again, a)
	}
	if ix.ID(a) != 7 || ix.ID(b) != 3 {
		t.Fatalf("ID round-trip broken: %d, %d", ix.ID(a), ix.ID(b))
	}
	if _, ok := ix.Lookup(99); ok {
		t.Fatal("Lookup invented an index")
	}
	if got := ix.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if ids := ix.IDs(); len(ids) != 2 || ids[0] != 7 || ids[1] != 3 {
		t.Fatalf("IDs = %v, want [7 3] (arrival order)", ids)
	}
}

// TestTableInternsNeighborhood: direct neighbors and announced second hops
// all land in the shared index; NeighborIdxs is parallel to Neighbors.
func TestTableInternsNeighborhood(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(5)
	tb.AddDirect(3)
	tb.SetNeighborSet(5, []field.NodeID{9, 3})

	ix := tb.Index()
	for _, id := range []field.NodeID{5, 3, 9} {
		if _, ok := ix.Lookup(id); !ok {
			t.Fatalf("node %d not interned", id)
		}
	}
	nbrs := tb.Neighbors()
	idxs := tb.NeighborIdxs()
	if len(nbrs) != len(idxs) {
		t.Fatalf("views not parallel: %d vs %d", len(nbrs), len(idxs))
	}
	for i, id := range nbrs {
		if ix.ID(idxs[i]) != id {
			t.Fatalf("NeighborIdxs[%d] = %d, maps to %d, want %d", i, idxs[i], ix.ID(idxs[i]), id)
		}
	}
	if idx, st, ok := tb.Lookup(5); !ok || st != StatusActive || ix.ID(idx) != 5 {
		t.Fatalf("Lookup(5) = %d,%v,%v", idx, st, ok)
	}
	if _, _, ok := tb.Lookup(9); ok {
		t.Fatal("Lookup treated a second-hop ID as a direct neighbor")
	}
}

// TestSecondHopCached: the view is stable across calls, and both
// membership changes and fresh announcements invalidate it.
func TestSecondHopCached(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	tb.SetNeighborSet(2, []field.NodeID{1, 3, 7})
	tb.SetNeighborSet(3, []field.NodeID{1, 9, 7})

	got := tb.SecondHop()
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("SecondHop = %v, want [7 9]", got)
	}
	if again := tb.SecondHop(); &again[0] != &got[0] {
		t.Fatal("SecondHop rebuilt despite no mutation")
	}

	// A new announcement must invalidate.
	tb.SetNeighborSet(3, []field.NodeID{1, 7})
	if got := tb.SecondHop(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("after re-announcement SecondHop = %v, want [7]", got)
	}

	// A membership change must invalidate: 7 becoming a direct neighbor
	// removes it from the second hop.
	tb.AddDirect(7)
	if got := tb.SecondHop(); len(got) != 0 {
		t.Fatalf("after AddDirect(7) SecondHop = %v, want []", got)
	}
}
