package neighbor

import (
	"testing"
	"time"

	"liteworp/internal/field"
	"liteworp/internal/keys"
	"liteworp/internal/medium"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// dynamicHarness wires an established 3-node chain with Dynamic discovery,
// runs initial discovery, then adds a joiner near node 1.
func dynamicHarness(t *testing.T) (*sim.Kernel, *field.Field, *medium.Medium, map[field.NodeID]*Table, map[field.NodeID]*Discovery) {
	t.Helper()
	k := sim.New(9)
	f := chain(t, 3)
	med := medium.New(k, f, medium.Config{BandwidthBps: 250_000})
	ks := keys.NewKeyServer(99)
	tables := map[field.NodeID]*Table{}
	discos := map[field.NodeID]*Discovery{}
	cfg := DefaultDiscoveryConfig()
	cfg.Dynamic = true
	for _, id := range f.IDs() {
		id := id
		tb := NewTable(id)
		d := NewDiscovery(k, keys.NewRing(id, ks), tb, med.Broadcast, cfg)
		tables[id] = tb
		discos[id] = d
		if err := med.Attach(id, func(p *packet.Packet) { d.Handle(p) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range discos {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Joiner appears next to node 1.
	if err := f.Place(50, field.Point{X: 25, Y: 5}); err != nil {
		t.Fatal(err)
	}
	tb := NewTable(50)
	d := NewDiscovery(k, keys.NewRing(50, ks), tb, med.Broadcast, cfg)
	tables[50] = tb
	discos[50] = d
	if err := med.Attach(50, func(p *packet.Packet) { d.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	return k, f, med, tables, discos
}

func TestDynamicJoinMutualAdoption(t *testing.T) {
	_, f, _, tables, _ := dynamicHarness(t)
	joiner := tables[50]
	truth := f.Neighbors(50)
	got := joiner.Neighbors()
	if len(got) != len(truth) {
		t.Fatalf("joiner neighbors = %v, truth %v", got, truth)
	}
	for _, nb := range truth {
		if !tables[nb].IsNeighbor(50) {
			t.Fatalf("established node %d did not adopt joiner", nb)
		}
		// Second-hop info both ways.
		if tables[50].NeighborsOf(nb) == nil {
			t.Fatalf("joiner missing %d's list", nb)
		}
		if tables[nb].NeighborsOf(50) == nil {
			t.Fatalf("node %d missing joiner's list", nb)
		}
	}
}

func TestDynamicJoinReannouncementPropagates(t *testing.T) {
	_, f, _, tables, _ := dynamicHarness(t)
	// Node 2 neighbors node 1; after node 1 adopts the joiner and
	// re-announces, node 2 must know the link joiner<->1.
	truth := f.Neighbors(50)
	for _, adoptive := range truth {
		for _, third := range f.Neighbors(adoptive) {
			if third == 50 {
				continue
			}
			if !tables[third].KnowsLink(50, adoptive) {
				t.Fatalf("node %d never learned link %d<->50 from re-announcement", third, adoptive)
			}
		}
	}
}

func TestStaticModeRejectsJoiner(t *testing.T) {
	// Without Dynamic, an established node ignores neighbor lists from
	// strangers even with valid tags.
	k := sim.New(9)
	f := chain(t, 2)
	med := medium.New(k, f, medium.Config{})
	ks := keys.NewKeyServer(99)
	tb1 := NewTable(1)
	d1 := NewDiscovery(k, keys.NewRing(1, ks), tb1, med.Broadcast, DefaultDiscoveryConfig())
	if err := med.Attach(1, func(p *packet.Packet) { d1.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	if err := med.Attach(2, func(*packet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A "joiner" (node 50) with valid keys announces a list naming node 1.
	ring50 := keys.NewRing(50, ks)
	payload, err := EncodeNeighborList([]field.NodeID{1}, func(list []byte, m field.NodeID) []byte {
		return ring50.SignBytes(list, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	d1.Handle(&packet.Packet{
		Type: packet.TypeNeighborList, Seq: 1, Origin: 50, Sender: 50,
		PrevHop: 50, Receiver: packet.Broadcast, Payload: payload,
	})
	if tb1.HasEntry(50) {
		t.Fatal("static-mode node adopted a stranger")
	}
}

func TestDynamicJoinRequiresRecentHello(t *testing.T) {
	// In Dynamic mode, a neighbor list from a stranger whose HELLO was
	// never heard must still be rejected (no open join window).
	k := sim.New(9)
	f := chain(t, 2)
	med := medium.New(k, f, medium.Config{})
	ks := keys.NewKeyServer(99)
	cfg := DefaultDiscoveryConfig()
	cfg.Dynamic = true
	tb1 := NewTable(1)
	d1 := NewDiscovery(k, keys.NewRing(1, ks), tb1, med.Broadcast, cfg)
	if err := med.Attach(1, func(p *packet.Packet) { d1.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	if err := med.Attach(2, func(*packet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}

	ring50 := keys.NewRing(50, ks)
	payload, err := EncodeNeighborList([]field.NodeID{1}, func(list []byte, m field.NodeID) []byte {
		return ring50.SignBytes(list, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	d1.Handle(&packet.Packet{
		Type: packet.TypeNeighborList, Seq: 1, Origin: 50, Sender: 50,
		PrevHop: 50, Receiver: packet.Broadcast, Payload: payload,
	})
	if tb1.HasEntry(50) {
		t.Fatal("dynamic node adopted a stranger without a join handshake")
	}
}

func TestDynamicJoinWindowExpires(t *testing.T) {
	k := sim.New(9)
	f := chain(t, 2)
	med := medium.New(k, f, medium.Config{})
	ks := keys.NewKeyServer(99)
	cfg := DefaultDiscoveryConfig()
	cfg.Dynamic = true
	cfg.JoinTTL = 2 * time.Second
	tb1 := NewTable(1)
	d1 := NewDiscovery(k, keys.NewRing(1, ks), tb1, med.Broadcast, cfg)
	if err := med.Attach(1, func(p *packet.Packet) { d1.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	if err := med.Attach(2, func(*packet.Packet) {}); err != nil {
		t.Fatal(err)
	}

	// Stranger's HELLO opens the window...
	d1.Handle(&packet.Packet{
		Type: packet.TypeHello, Seq: 1, Origin: 50, Sender: 50,
		PrevHop: 50, Receiver: packet.Broadcast,
	})
	// ...but the list arrives after the TTL.
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ring50 := keys.NewRing(50, ks)
	payload, err := EncodeNeighborList([]field.NodeID{1}, func(list []byte, m field.NodeID) []byte {
		return ring50.SignBytes(list, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	d1.Handle(&packet.Packet{
		Type: packet.TypeNeighborList, Seq: 2, Origin: 50, Sender: 50,
		PrevHop: 50, Receiver: packet.Broadcast, Payload: payload,
	})
	if tb1.HasEntry(50) {
		t.Fatal("join window did not expire")
	}
}
