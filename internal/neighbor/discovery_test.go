package neighbor

import (
	"math/rand"
	"testing"

	"liteworp/internal/field"
	"liteworp/internal/keys"
	"liteworp/internal/medium"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// harness wires n nodes (tables, rings, discovery) over a medium built from
// the given field, then runs the full discovery protocol.
type harness struct {
	kernel *sim.Kernel
	topo   *field.Field
	med    *medium.Medium
	tables map[field.NodeID]*Table
	discos map[field.NodeID]*Discovery
}

func newHarness(t testing.TB, topo *field.Field, seed int64) *harness {
	t.Helper()
	k := sim.New(seed)
	med := medium.New(k, topo, medium.Config{BandwidthBps: 250_000})
	ks := keys.NewKeyServer(99)
	h := &harness{
		kernel: k,
		topo:   topo,
		med:    med,
		tables: make(map[field.NodeID]*Table),
		discos: make(map[field.NodeID]*Discovery),
	}
	for _, id := range topo.IDs() {
		id := id
		tb := NewTable(id)
		ring := keys.NewRing(id, ks)
		d := NewDiscovery(k, ring, tb, med.Broadcast, DefaultDiscoveryConfig())
		h.tables[id] = tb
		h.discos[id] = d
		if err := med.Attach(id, func(p *packet.Packet) { d.Handle(p) }); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *harness) run(t testing.TB) {
	t.Helper()
	for _, d := range h.discos {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.kernel.Run(); err != nil {
		t.Fatal(err)
	}
}

func chain(t testing.TB, n int) *field.Field {
	t.Helper()
	f := field.New(float64(n*20+20), 40, 30)
	for i := 1; i <= n; i++ {
		if err := f.Place(field.NodeID(i), field.Point{X: float64(i * 20), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestDiscoveryBuildsCorrectOneHopTables(t *testing.T) {
	h := newHarness(t, chain(t, 5), 1)
	h.run(t)
	for _, id := range h.topo.IDs() {
		got := h.tables[id].Neighbors()
		want := h.topo.Neighbors(id)
		if len(got) != len(want) {
			t.Fatalf("node %d neighbors = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d neighbors = %v, want %v", id, got, want)
			}
		}
		if !h.discos[id].Complete() {
			t.Fatalf("node %d discovery incomplete", id)
		}
	}
}

func TestDiscoveryBuildsCorrectTwoHopTables(t *testing.T) {
	h := newHarness(t, chain(t, 5), 2)
	h.run(t)
	// Node 1's neighbor 2 should have announced {1,3}.
	tb := h.tables[1]
	nset := tb.NeighborsOf(2)
	if nset == nil {
		t.Fatal("node 1 missing neighbor list of node 2")
	}
	if !containsSorted(nset, 1) || !containsSorted(nset, 3) || len(nset) != 2 {
		t.Fatalf("node 1's view of 2's neighbors = %v, want {1,3}", nset)
	}
	// Second-hop check: 3 is a legal previous hop for packets forwarded
	// by 2; 4 is not.
	if !tb.KnowsLink(3, 2) {
		t.Fatal("legal second-hop link rejected")
	}
	if tb.KnowsLink(4, 2) {
		t.Fatal("illegal second-hop link accepted")
	}
}

func TestDiscoveryOnRandomDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	side := field.SideForDensity(60, 8, 30)
	topo, err := field.DeployUniform(field.DeployConfig{N: 60, Width: side, Height: side, Range: 30, FirstID: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, topo, 4)
	h.run(t)
	for _, id := range topo.IDs() {
		got := h.tables[id].Neighbors()
		want := topo.Neighbors(id)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors discovered, want %d", id, len(got), len(want))
		}
		// Every neighbor's announced list must match ground truth.
		for _, nb := range want {
			nset := h.tables[id].NeighborsOf(nb)
			truth := topo.Neighbors(nb)
			if len(nset) != len(truth) {
				t.Fatalf("node %d's view of %d's list has %d entries, want %d",
					id, nb, len(nset), len(truth))
			}
			for _, x := range truth {
				if !containsSorted(nset, x) {
					t.Fatalf("node %d's view of %d's list missing %d", id, nb, x)
				}
			}
		}
	}
}

func TestDiscoveryIgnoresUnauthenticatedReply(t *testing.T) {
	// An external attacker without keys replies to a HELLO; the announcer
	// must not add it.
	topo := chain(t, 2)
	if err := topo.Place(66, field.Point{X: 20, Y: 10}); err != nil { // in range of node 1
		t.Fatal(err)
	}
	k := sim.New(5)
	med := medium.New(k, topo, medium.Config{})
	ks := keys.NewKeyServer(99)

	tb1 := NewTable(1)
	d1 := NewDiscovery(k, keys.NewRing(1, ks), tb1, med.Broadcast, DefaultDiscoveryConfig())
	if err := med.Attach(1, func(p *packet.Packet) { d1.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	if err := med.Attach(2, func(*packet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	// Node 66 is an outsider: it replies with a garbage MAC.
	if err := med.Attach(66, func(p *packet.Packet) {
		if p.Type != packet.TypeHello {
			return
		}
		reply := &packet.Packet{
			Type: packet.TypeHelloReply, Seq: 1, Origin: 66, Sender: 66,
			PrevHop: 66, Receiver: p.Sender,
			MAC: []byte{0, 1, 2, 3, 4, 5, 6, 7},
		}
		_ = med.Broadcast(reply)
	}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tb1.IsNeighbor(66) {
		t.Fatal("unauthenticated outsider accepted as neighbor")
	}
}

func TestDiscoveryRejectsForgedNeighborList(t *testing.T) {
	// A compromised-key-free outsider broadcasts a forged neighbor list
	// claiming to be node 2; node 1 must ignore it because the per-member
	// tag cannot verify.
	topo := chain(t, 3)
	k := sim.New(6)
	med := medium.New(k, topo, medium.Config{})
	ks := keys.NewKeyServer(99)

	tb1 := NewTable(1)
	d1 := NewDiscovery(k, keys.NewRing(1, ks), tb1, med.Broadcast, DefaultDiscoveryConfig())
	if err := med.Attach(1, func(p *packet.Packet) { d1.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(2)
	d2 := NewDiscovery(k, keys.NewRing(2, ks), tb2, med.Broadcast, DefaultDiscoveryConfig())
	if err := med.Attach(2, func(p *packet.Packet) { d2.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	tb3 := NewTable(3)
	d3 := NewDiscovery(k, keys.NewRing(3, ks), tb3, med.Broadcast, DefaultDiscoveryConfig())
	if err := med.Attach(3, func(p *packet.Packet) { d3.Handle(p) }); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Discovery{d1, d2, d3} {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Legitimate state: 1 knows 2's true list {1,3}.
	if !tb1.KnowsLink(3, 2) {
		t.Fatal("setup: legitimate discovery failed")
	}

	// Forged announcement: claims node 2's neighbors are {1, 99}.
	forged, err := EncodeNeighborList([]field.NodeID{1, 99},
		func(list []byte, member field.NodeID) []byte {
			return make([]byte, packet.MACSize) // zero tags
		})
	if err != nil {
		t.Fatal(err)
	}
	fake := &packet.Packet{
		Type: packet.TypeNeighborList, Seq: 77, Origin: 2, Sender: 2,
		PrevHop: 2, Receiver: packet.Broadcast, Payload: forged,
	}
	d1.Handle(fake)
	if tb1.KnowsLink(99, 2) {
		t.Fatal("forged neighbor list accepted")
	}
}

func TestDoubleStartFails(t *testing.T) {
	h := newHarness(t, chain(t, 2), 7)
	d := h.discos[1]
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestOnCompleteFires(t *testing.T) {
	h := newHarness(t, chain(t, 2), 8)
	fired := false
	h.discos[1].OnComplete(func() { fired = true })
	h.run(t)
	if !fired {
		t.Fatal("OnComplete did not fire")
	}
}

func TestEncodeDecodeNeighborList(t *testing.T) {
	ks := keys.NewKeyServer(1)
	ring := keys.NewRing(7, ks)
	members := []field.NodeID{3, 9, 12}
	payload, err := EncodeNeighborList(members, func(list []byte, m field.NodeID) []byte {
		return ring.SignBytes(list, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		ids, listBytes, tag, err := DecodeNeighborList(payload, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 3 || ids[i] != m {
			t.Fatalf("decoded ids = %v", ids)
		}
		peerRing := keys.NewRing(m, ks)
		if !peerRing.VerifyBytes(listBytes, tag, 7) {
			t.Fatalf("member %d tag failed to verify", m)
		}
	}
	// Non-member gets no tag.
	_, _, tag, err := DecodeNeighborList(payload, 42)
	if err != nil || tag != nil {
		t.Fatalf("non-member decode: tag=%v err=%v", tag, err)
	}
}

func TestDecodeNeighborListMalformed(t *testing.T) {
	if _, _, _, err := DecodeNeighborList(nil, 1); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, _, _, err := DecodeNeighborList([]byte{0, 5, 1}, 1); err == nil {
		t.Fatal("short payload accepted")
	}
	// Valid empty list.
	ids, _, tag, err := DecodeNeighborList([]byte{0, 0}, 1)
	if err != nil || len(ids) != 0 || tag != nil {
		t.Fatalf("empty list decode: %v %v %v", ids, tag, err)
	}
}

func TestDiscoveryDeterministic(t *testing.T) {
	sum := func() int {
		h := newHarness(t, chain(t, 6), 42)
		h.run(t)
		total := 0
		for _, tb := range h.tables {
			total += tb.MemoryBytes()
		}
		return total
	}
	if sum() != sum() {
		t.Fatal("discovery nondeterministic under equal seeds")
	}
}
