package neighbor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"liteworp/internal/field"
	"liteworp/internal/keys"
	"liteworp/internal/packet"
	"liteworp/internal/sim"
)

// The discovery protocol (paper §4.2.1, "Building Neighbor Lists"):
//
//  1. At deployment a node does a one-hop broadcast of a HELLO message.
//  2. Any node that hears it sends back an authenticated reply using the
//     pairwise shared key. The announcer verifies each reply and adds the
//     responder to its neighbor list R_A.
//  3. The announcer then one-hop broadcasts R_A, authenticated individually
//     with the key shared with each member of R_A. Members verify their tag
//     and store R_A — the second-hop information.
//
// The protocol runs once per node lifetime; the system model's compromise
// threshold time T_CT guarantees no insider exists within two hops while it
// runs.

// DiscoveryConfig tunes the discovery timing.
type DiscoveryConfig struct {
	// ReplyWindow is how long the announcer collects HELLO replies before
	// broadcasting its neighbor list. The protocol completes within
	// 2*ReplyWindow (T_ND in the paper's system model).
	ReplyWindow time.Duration
	// Jitter randomizes reply transmission within the window to avoid
	// synchronized reply bursts.
	Jitter time.Duration
	// Dynamic enables incremental joins (the paper's §7 extension for
	// mobile networks / incremental deployment): an established node that
	// hears a HELLO from an unknown node replies as usual, remembers the
	// join attempt briefly, and — when the joiner's authenticated
	// neighbor-list announcement names it with a valid per-member MAC —
	// adds the joiner as a direct neighbor. Note: without the initial
	// deployment's compromise-threshold-time assumption, dynamic joins
	// reopen the relay-attack window during the handshake; the paper's
	// cited dynamic protocols ([15][16]) close it with additional
	// hardware/timing, and local monitoring then polices the new links.
	Dynamic bool
	// JoinTTL bounds how long a heard HELLO keeps the join window open
	// (default 2*ReplyWindow).
	JoinTTL time.Duration
}

// DefaultDiscoveryConfig returns sensible timings for simulation.
func DefaultDiscoveryConfig() DiscoveryConfig {
	return DiscoveryConfig{
		ReplyWindow: 2 * time.Second,
		Jitter:      500 * time.Millisecond,
	}
}

// Discovery runs the secure neighbor discovery protocol for one node.
type Discovery struct {
	kernel sim.Clock
	ring   *keys.Ring
	table  *Table
	send   func(*packet.Packet) error
	cfg    DiscoveryConfig

	seq      uint64
	started  bool
	complete bool
	onDone   func()

	// pendingJoin tracks HELLOs recently heard from unknown nodes while
	// Dynamic mode is on: sender -> join window expiry.
	pendingJoin map[field.NodeID]time.Duration
}

// NewDiscovery wires a discovery instance for the owner of table/ring.
// send transmits a frame on the shared medium.
func NewDiscovery(k sim.Clock, ring *keys.Ring, table *Table, send func(*packet.Packet) error, cfg DiscoveryConfig) *Discovery {
	if cfg.ReplyWindow <= 0 {
		dyn, ttl := cfg.Dynamic, cfg.JoinTTL
		cfg = DefaultDiscoveryConfig()
		cfg.Dynamic, cfg.JoinTTL = dyn, ttl
	}
	if cfg.JoinTTL <= 0 {
		cfg.JoinTTL = 2 * cfg.ReplyWindow
	}
	return &Discovery{
		kernel: k, ring: ring, table: table, send: send, cfg: cfg,
		pendingJoin: make(map[field.NodeID]time.Duration),
	}
}

// OnComplete registers a callback invoked when discovery finishes
// (neighbor list broadcast sent and the listen window expired).
func (d *Discovery) OnComplete(fn func()) { d.onDone = fn }

// Complete reports whether the discovery phase has finished.
func (d *Discovery) Complete() bool { return d.complete }

func (d *Discovery) nextSeq() uint64 {
	d.seq++
	return d.seq
}

// Start broadcasts the HELLO and schedules the two protocol phases.
func (d *Discovery) Start() error {
	if d.started {
		return errors.New("neighbor: discovery already started")
	}
	d.started = true
	self := d.table.Self()
	hello := &packet.Packet{
		Type:     packet.TypeHello,
		Seq:      d.nextSeq(),
		Origin:   self,
		Sender:   self,
		PrevHop:  self,
		Receiver: packet.Broadcast,
	}
	if err := d.send(hello); err != nil {
		return fmt.Errorf("neighbor: hello: %w", err)
	}
	d.kernel.After(d.cfg.ReplyWindow, d.announceList)
	d.kernel.After(2*d.cfg.ReplyWindow, func() {
		d.complete = true
		if d.onDone != nil {
			d.onDone()
		}
	})
	return nil
}

func (d *Discovery) announceList() {
	self := d.table.Self()
	// Stale members are included so a rebooted neighbor — still marked
	// stale here until it is heard again — finds its tag and can verify.
	members := d.table.TrustedNeighbors()
	payload, err := EncodeNeighborList(members, func(listBytes []byte, member field.NodeID) []byte {
		return d.ring.SignBytes(listBytes, member)
	})
	if err != nil {
		return
	}
	nblist := &packet.Packet{
		Type:     packet.TypeNeighborList,
		Seq:      d.nextSeq(),
		Origin:   self,
		Sender:   self,
		PrevHop:  self,
		Receiver: packet.Broadcast,
		Payload:  payload,
	}
	_ = d.send(nblist)
}

// Handle processes a discovery-phase frame addressed to or overheard by
// this node. It reports whether the frame was consumed.
func (d *Discovery) Handle(p *packet.Packet) bool {
	switch p.Type {
	case packet.TypeHello:
		d.handleHello(p)
		return true
	case packet.TypeHelloReply:
		d.handleHelloReply(p)
		return true
	case packet.TypeNeighborList:
		d.handleNeighborList(p)
		return true
	default:
		return false
	}
}

func (d *Discovery) handleHello(p *packet.Packet) {
	self := d.table.Self()
	if p.Sender == self {
		return
	}
	announcer := p.Sender
	if d.table.IsNeighbor(announcer) || d.table.IsStale(announcer) {
		// A HELLO from a node we already know is a rebooted neighbor
		// re-running discovery: its volatile state — including the
		// second-hop knowledge it needs to pass two-hop checks — is gone.
		// Re-announce our neighbor list once our (jittered) reply has had
		// time to re-establish the direct link, so the announcer can
		// verify the list. At initial deployment this path never fires:
		// HELLOs arrive before any replies, so every announcer is still
		// unknown.
		d.kernel.After(d.cfg.Jitter+d.kernel.UniformDuration(d.cfg.Jitter), d.announceList)
	}
	if d.cfg.Dynamic && !d.table.HasEntry(announcer) {
		// A join attempt: leave the door open for the announcer's
		// authenticated neighbor-list to complete the handshake.
		d.pendingJoin[announcer] = d.kernel.Now() + d.cfg.JoinTTL
		exp := d.pendingJoin[announcer]
		d.kernel.After(d.cfg.JoinTTL, func() {
			if cur, ok := d.pendingJoin[announcer]; ok && cur <= exp && cur <= d.kernel.Now() {
				delete(d.pendingJoin, announcer)
			}
		})
	}
	reply := &packet.Packet{
		Type:     packet.TypeHelloReply,
		Seq:      d.nextSeq(),
		Origin:   self,
		Sender:   self,
		PrevHop:  self,
		Receiver: announcer,
	}
	if err := d.ring.Sign(reply, announcer); err != nil {
		return
	}
	delay := d.kernel.UniformDuration(d.cfg.Jitter)
	d.kernel.After(delay, func() { _ = d.send(reply) })
}

func (d *Discovery) handleHelloReply(p *packet.Packet) {
	self := d.table.Self()
	if p.Receiver != self || p.Sender == self {
		return // overheard someone else's reply
	}
	if !d.ring.Verify(p, p.Sender) {
		return // unauthenticated responder (e.g. an external attacker)
	}
	d.table.AddDirect(p.Sender)
}

func (d *Discovery) handleNeighborList(p *packet.Packet) {
	self := d.table.Self()
	if p.Sender == self {
		return
	}
	// Lists from direct neighbors refresh second-hop knowledge; a list
	// from a stale neighbor is a rebooted node re-announcing itself after
	// re-running discovery against its persisted key ring. In Dynamic mode
	// a list from a node whose HELLO we recently heard completes the join
	// handshake. Either way the announcer must have authenticated the list
	// for us specifically.
	joining := false
	if !d.table.IsNeighbor(p.Sender) && !d.table.IsStale(p.Sender) {
		exp, pending := d.pendingJoin[p.Sender]
		if !d.cfg.Dynamic || !pending || exp <= d.kernel.Now() {
			return
		}
		joining = true
	}
	ids, listBytes, tag, err := DecodeNeighborList(p.Payload, self)
	if err != nil {
		return
	}
	if tag == nil {
		// We are not a member of the announcer's list (asymmetric hearing
		// or a lost reply); without a tag the list cannot be verified.
		return
	}
	if !d.ring.VerifyBytes(listBytes, tag, p.Sender) {
		return
	}
	if joining {
		d.table.AddDirect(p.Sender)
		delete(d.pendingJoin, p.Sender)
		// Our own announced list is now stale: re-announce (jittered) so
		// the rest of the neighborhood learns the new link — otherwise
		// their second-hop checks would reject forwards across it.
		d.kernel.After(d.kernel.UniformDuration(d.cfg.Jitter), d.announceList)
	}
	// An authenticated list from a presumed-dead neighbor proves it is back.
	d.table.Refresh(p.Sender)
	d.table.SetNeighborSet(p.Sender, ids)
}

// Neighbor-list payload layout:
//
//	count   uint16
//	ids     count * uint32
//	tags    count * MACSize bytes (tags[i] authenticates the id section for
//	        member ids[i])

// ErrBadList reports a malformed neighbor-list payload.
var ErrBadList = errors.New("neighbor: malformed neighbor-list payload")

// EncodeNeighborList serializes the member list with one authentication tag
// per member, produced by signFor(listBytes, member).
func EncodeNeighborList(members []field.NodeID, signFor func(listBytes []byte, member field.NodeID) []byte) ([]byte, error) {
	if len(members) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d members", ErrBadList, len(members))
	}
	listBytes := make([]byte, 0, 2+4*len(members))
	listBytes = binary.BigEndian.AppendUint16(listBytes, uint16(len(members)))
	for _, id := range members {
		listBytes = binary.BigEndian.AppendUint32(listBytes, uint32(id))
	}
	out := make([]byte, len(listBytes), len(listBytes)+packet.MACSize*len(members))
	copy(out, listBytes)
	for _, id := range members {
		tag := signFor(listBytes, id)
		if len(tag) != packet.MACSize {
			return nil, fmt.Errorf("%w: tag size %d", ErrBadList, len(tag))
		}
		out = append(out, tag...)
	}
	return out, nil
}

// DecodeNeighborList parses a payload and extracts the tag addressed to
// self (nil if self is not a member). listBytes is the tag-covered section.
func DecodeNeighborList(payload []byte, self field.NodeID) (ids []field.NodeID, listBytes, tag []byte, err error) {
	if len(payload) < 2 {
		return nil, nil, nil, ErrBadList
	}
	n := int(binary.BigEndian.Uint16(payload))
	headerLen := 2 + 4*n
	wantLen := headerLen + packet.MACSize*n
	if len(payload) != wantLen {
		return nil, nil, nil, fmt.Errorf("%w: length %d, want %d", ErrBadList, len(payload), wantLen)
	}
	ids = make([]field.NodeID, n)
	selfIdx := -1
	for i := 0; i < n; i++ {
		ids[i] = field.NodeID(binary.BigEndian.Uint32(payload[2+4*i:]))
		if ids[i] == self {
			selfIdx = i
		}
	}
	listBytes = payload[:headerLen]
	if selfIdx >= 0 {
		off := headerLen + packet.MACSize*selfIdx
		tag = payload[off : off+packet.MACSize]
	}
	return ids, listBytes, tag, nil
}
