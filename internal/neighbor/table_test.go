package neighbor

import (
	"testing"

	"liteworp/internal/field"
)

func TestAddDirectAndIsNeighbor(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	tb.AddDirect(1) // self: ignored
	if !tb.IsNeighbor(2) || !tb.IsNeighbor(3) {
		t.Fatal("direct neighbors not recognized")
	}
	if tb.IsNeighbor(1) {
		t.Fatal("self recorded as neighbor")
	}
	if tb.IsNeighbor(4) {
		t.Fatal("unknown node recognized as neighbor")
	}
	if got := tb.Neighbors(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Neighbors = %v", got)
	}
	if tb.Self() != 1 {
		t.Fatalf("Self = %d", tb.Self())
	}
}

func TestAddDirectIdempotentKeepsData(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.SetNeighborSet(2, []field.NodeID{5, 6})
	tb.AddDirect(2)
	if !tb.KnowsLink(5, 2) {
		t.Fatal("re-adding a neighbor cleared its second-hop data")
	}
}

func TestRevoke(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	if !tb.Revoke(2) {
		t.Fatal("Revoke returned false for active neighbor")
	}
	if tb.Revoke(2) {
		t.Fatal("second Revoke returned true")
	}
	if tb.Revoke(99) {
		t.Fatal("Revoke of unknown node returned true")
	}
	if tb.IsNeighbor(2) {
		t.Fatal("revoked node still an active neighbor")
	}
	if !tb.IsRevoked(2) {
		t.Fatal("IsRevoked false after revocation")
	}
	if !tb.HasEntry(2) {
		t.Fatal("revoked node lost its entry")
	}
	if got := tb.Neighbors(); len(got) != 0 {
		t.Fatalf("Neighbors after revoke = %v", got)
	}
	if got := tb.AllEntries(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("AllEntries = %v", got)
	}
}

func TestSetNeighborSetRequiresDirect(t *testing.T) {
	tb := NewTable(1)
	tb.SetNeighborSet(9, []field.NodeID{5})
	if tb.KnowsLink(5, 9) {
		t.Fatal("stored second-hop data for a non-neighbor")
	}
}

func TestSetNeighborSetExcludesOwner(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.SetNeighborSet(2, []field.NodeID{2, 5})
	nset := tb.NeighborsOf(2)
	if containsSorted(nset, 2) {
		t.Fatal("a node listed as its own neighbor")
	}
	if !containsSorted(nset, 5) {
		t.Fatal("legitimate second hop missing")
	}
}

func TestKnowsLink(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	tb.SetNeighborSet(2, []field.NodeID{1, 4})

	// Self-originated packets are always consistent.
	if !tb.KnowsLink(2, 2) {
		t.Fatal("prev==sender rejected")
	}
	// 4 is announced as 2's neighbor.
	if !tb.KnowsLink(4, 2) {
		t.Fatal("valid second-hop link rejected")
	}
	// 5 is not announced as 2's neighbor.
	if tb.KnowsLink(5, 2) {
		t.Fatal("fabricated link accepted")
	}
	// We know our own links: prev==self means sender must be our neighbor.
	if !tb.KnowsLink(1, 2) {
		t.Fatal("own link to direct neighbor rejected")
	}
	if tb.KnowsLink(1, 9) {
		t.Fatal("own link to stranger accepted")
	}
	// 3 never announced a list: unknown links are rejected.
	if tb.KnowsLink(4, 3) {
		t.Fatal("link via neighbor without announced list accepted")
	}
}

func TestIsGuardOf(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)

	// Guard of a link between two of our neighbors.
	if !tb.IsGuardOf(2, 3) {
		t.Fatal("not guard of link between two direct neighbors")
	}
	// We guard our own outgoing links.
	if !tb.IsGuardOf(1, 2) {
		t.Fatal("not guard of own outgoing link")
	}
	// Not a guard when the receiver is ourselves.
	if tb.IsGuardOf(2, 1) {
		t.Fatal("guard of own incoming link")
	}
	// Not a guard of links to strangers.
	if tb.IsGuardOf(2, 9) || tb.IsGuardOf(9, 2) {
		t.Fatal("guard of link involving stranger")
	}
	// Degenerate: self-loop.
	if tb.IsGuardOf(2, 2) {
		t.Fatal("guard of self-loop")
	}
}

func TestIsGuardOfIncludesRevoked(t *testing.T) {
	// Guards keep watching links of revoked nodes (HasEntry, not
	// IsNeighbor): topology knowledge survives revocation.
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	tb.Revoke(2)
	if !tb.IsGuardOf(2, 3) {
		t.Fatal("revocation removed guard coverage")
	}
}

func TestSecondHop(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	tb.SetNeighborSet(2, []field.NodeID{1, 3, 4, 5})
	tb.SetNeighborSet(3, []field.NodeID{1, 5, 6})
	got := tb.SecondHop()
	want := []field.NodeID{4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("SecondHop = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SecondHop = %v, want %v", got, want)
		}
	}
}

func TestMemoryBytesMatchesPaperModel(t *testing.T) {
	// Paper §5.2: ~10 neighbors each with ~10-entry lists => < 0.5 KB.
	tb := NewTable(1)
	for i := field.NodeID(2); i <= 11; i++ {
		tb.AddDirect(i)
		list := make([]field.NodeID, 0, 10)
		for j := field.NodeID(20); j < 30; j++ {
			list = append(list, j)
		}
		tb.SetNeighborSet(i, list)
	}
	got := tb.MemoryBytes()
	want := 10*5 + 10*10*4 // 450 bytes
	if got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	if got >= 512 {
		t.Fatalf("10-neighbor table uses %d B, paper promises < 0.5 KB", got)
	}
}

func TestStatusString(t *testing.T) {
	if StatusActive.String() != "active" || StatusRevoked.String() != "revoked" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status empty")
	}
}

// TestCachedViewsTrackStatusChanges exercises the lazily cached sorted
// views through every mutator that must invalidate them.
func TestCachedViewsTrackStatusChanges(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(5)
	tb.AddDirect(3)
	if got := tb.Neighbors(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Neighbors = %v, want [3 5]", got)
	}
	// AddDirect after a view was built must invalidate.
	tb.AddDirect(4)
	if got := tb.Neighbors(); len(got) != 3 || got[1] != 4 {
		t.Fatalf("Neighbors after add = %v, want [3 4 5]", got)
	}
	// MarkStale moves the node out of Neighbors but keeps it trusted.
	tb.MarkStale(4)
	if got := tb.Neighbors(); len(got) != 2 {
		t.Fatalf("Neighbors after stale = %v, want [3 5]", got)
	}
	if got := tb.TrustedNeighbors(); len(got) != 3 {
		t.Fatalf("TrustedNeighbors after stale = %v, want [3 4 5]", got)
	}
	// Refresh restores it.
	tb.Refresh(4)
	if got := tb.Neighbors(); len(got) != 3 {
		t.Fatalf("Neighbors after refresh = %v, want [3 4 5]", got)
	}
	// Revoke removes it from both filtered views but not AllEntries.
	tb.Revoke(4)
	if got := tb.Neighbors(); len(got) != 2 {
		t.Fatalf("Neighbors after revoke = %v, want [3 5]", got)
	}
	if got := tb.TrustedNeighbors(); len(got) != 2 {
		t.Fatalf("TrustedNeighbors after revoke = %v, want [3 5]", got)
	}
	if got := tb.AllEntries(); len(got) != 3 {
		t.Fatalf("AllEntries after revoke = %v, want [3 4 5]", got)
	}
	// No-op mutators must not corrupt anything either.
	tb.Revoke(4)
	tb.MarkStale(99)
	tb.Refresh(3)
	if got := tb.Neighbors(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Neighbors after no-ops = %v, want [3 5]", got)
	}
}

// TestCachedViewAppendDoesNotCorrupt pins the capacity clip: a caller that
// appends to a returned view must get a fresh backing array, leaving the
// cache intact.
func TestCachedViewAppendDoesNotCorrupt(t *testing.T) {
	tb := NewTable(1)
	tb.AddDirect(2)
	tb.AddDirect(3)
	view := tb.Neighbors()
	grown := append(view, 999)
	if &grown[0] == &view[0] {
		t.Fatal("append grew in place: capacity clip missing")
	}
	again := tb.Neighbors()
	if len(again) != 2 || again[0] != 2 || again[1] != 3 {
		t.Fatalf("cached view corrupted by caller append: %v", again)
	}
}

// TestNeighborsViewAllocFree: repeated reads of an unchanged table must not
// allocate — the whole point of the cache.
func TestNeighborsViewAllocFree(t *testing.T) {
	tb := NewTable(1)
	for i := field.NodeID(2); i <= 20; i++ {
		tb.AddDirect(i)
	}
	tb.Neighbors() // build once
	allocs := testing.AllocsPerRun(100, func() {
		_ = tb.Neighbors()
		_ = tb.TrustedNeighbors()
		_ = tb.AllEntries()
	})
	if allocs != 0 {
		t.Fatalf("cached views allocate %.1f objects per read, want 0", allocs)
	}
}
