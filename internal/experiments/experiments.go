// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (attack taxonomy), Table 2 (simulation parameters),
// Figure 5 (guard geometry), Figures 6(a)/6(b) (coverage analysis),
// Figure 8 (cumulative packets dropped over time), Figure 9 (fraction of
// packets dropped and of wormhole routes vs number of colluders), Figure 10
// (detection probability and isolation latency vs gamma), and the §5.2
// cost analysis.
//
// Simulation experiments average over multiple seeded runs (the paper
// averages 30); the Scale type trades fidelity for wall-clock time so the
// same code serves both the test suite (Quick) and the full harness
// (Paper).
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"liteworp"
	"liteworp/internal/analysis"
	"liteworp/internal/attack"
	"liteworp/internal/campaign"
	"liteworp/internal/detector"
	"liteworp/internal/metrics"
	"liteworp/internal/textplot"
)

// Scale sizes a simulation experiment.
type Scale struct {
	// Runs is the number of independent seeded runs to average.
	Runs int
	// Nodes is the network size N.
	Nodes int
	// Duration is the operational-phase length per run.
	Duration time.Duration
}

// Quick is a CI-friendly scale; Paper matches the publication (N=100,
// 30 runs, 2000 s horizons). Both derive from the same base through
// newScale, so a Scale field added to baseScale cannot drift between
// them.
var (
	Quick = newScale(3, 50, 300*time.Second)
	Paper = newScale(30, 100, 2000*time.Second)
)

// baseScale holds every Scale default the scales share (today none —
// Runs/Nodes/Duration are exactly the knobs that differ); any future
// field gets its one shared value here.
var baseScale = Scale{}

// newScale derives a Scale from baseScale, overriding only the size
// knobs.
func newScale(runs, nodes int, duration time.Duration) Scale {
	s := baseScale
	s.Runs, s.Nodes, s.Duration = runs, nodes, duration
	return s
}

// params layers the seed and the scale's size knobs over the one shared
// parameter base (the paper's Table 2 defaults). Every scale goes through
// this single path, so a new Params field keeps one value across scales.
func (s Scale) params(seed int64) liteworp.Params {
	p := liteworp.DefaultParams()
	p.Seed = seed
	p.NumNodes = s.Nodes
	p.Duration = s.Duration
	return p
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one taxonomy row.
type Table1Row struct {
	Mode               string
	MinCompromised     int
	SpecialRequirement string
	HandledByLiteworp  bool
}

// Table1 returns the wormhole attack-mode taxonomy.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, mi := range attack.Taxonomy() {
		rows = append(rows, Table1Row{
			Mode:               mi.Name,
			MinCompromised:     mi.MinCompromised,
			SpecialRequirement: mi.SpecialRequirement,
			HandledByLiteworp:  mi.HandledByLiteworp,
		})
	}
	return rows
}

// RenderTable1 prints Table 1 as text.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: wormhole attack modes\n")
	fmt.Fprintf(&b, "%-26s %-12s %-20s %s\n", "Mode", "Min nodes", "Requirement", "LITEWORP handles")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-26s %-12d %-20s %v\n", r.Mode, r.MinCompromised, r.SpecialRequirement, r.HandledByLiteworp)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one input-parameter row.
type Table2Row struct {
	Name  string
	Value string
}

// Table2 returns the simulation input parameters (the defaults encode the
// paper's values).
func Table2() []Table2Row {
	p := liteworp.DefaultParams()
	return []Table2Row{
		{"Tx range (r)", fmt.Sprintf("%g m", p.TxRange)},
		{"gamma (detection confidence)", fmt.Sprintf("%d (swept 2-8 in Fig 10)", p.Gamma)},
		{"Total nodes (N)", fmt.Sprintf("%d (paper: 20,50,100,150)", p.NumNodes)},
		{"Avg neighbors (NB)", fmt.Sprintf("%g", p.AvgNeighbors)},
		{"lambda (data rate)", fmt.Sprintf("%g /s", p.Lambda)},
		{"mu (dest reselection)", fmt.Sprintf("%g /s", p.Mu)},
		{"TOutRoute", p.RouteTimeout.String()},
		{"Compromised nodes (M)", fmt.Sprintf("%d (swept 0-4 in Fig 9)", p.NumMalicious)},
		{"Channel bandwidth", fmt.Sprintf("%g kbps", p.BandwidthBps/1000)},
		{"tau (watch timeout)", p.WatchTimeout.String()},
		{"T (MalC window)", p.MalCWindow.String()},
		{"C_t / V_f / V_d", fmt.Sprintf("%d / %d / %d", p.MalCThreshold, p.FabricationIncrement, p.DropIncrement)},
		{"Attack start", p.AttackStart.String()},
	}
}

// RenderTable2 prints Table 2 as text.
func RenderTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: simulation input parameters\n")
	for _, r := range Table2() {
		fmt.Fprintf(&b, "%-30s %s\n", r.Name, r.Value)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Result carries the guard-geometry quantities.
type Figure5Result struct {
	Geometry liteworp.GuardGeometry
	// AreaCurve samples A(x)/r^2 for x/r in [0, 1].
	AreaCurve []analysis.CurvePoint
}

// Figure5 evaluates the lens geometry at the paper's range and a density
// that yields the given neighbor count.
func Figure5(r, nb float64) Figure5Result {
	density := nb / (3.141592653589793 * r * r)
	res := Figure5Result{Geometry: liteworp.AnalyzeGuardGeometry(r, density)}
	for i := 0; i <= 20; i++ {
		x := float64(i) / 20
		res.AreaCurve = append(res.AreaCurve, analysis.CurvePoint{
			X: x,
			Y: liteworp.LensArea(x*r, r) / (r * r),
		})
	}
	return res
}

// RenderFigure5 prints the geometry summary.
func RenderFigure5() string {
	res := Figure5(30, 8)
	g := res.Geometry
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: guard-region geometry (r=30 m, NB=8)\n")
	fmt.Fprintf(&b, "A(r)  (min guard area)      = %.3f r^2\n", g.MinArea/900)
	fmt.Fprintf(&b, "E[A]  (expected guard area) = %.3f r^2 (paper rounds to 1.6)\n", g.ExpectedArea/900)
	fmt.Fprintf(&b, "guards per neighbor: exact %.3f, paper Eq.(I) %.2f\n", g.GuardsPerNeighborExact, g.GuardsPerNeighborPaper)
	fmt.Fprintf(&b, "expected guards per link at NB=8: %.2f (min %.2f)\n", g.ExpectedGuards, g.MinGuards)
	return b.String()
}

// -------------------------------------------------------------- Figure 6

// Figure6a returns the analytic detection-probability curve vs NB.
func Figure6a() []analysis.CurvePoint {
	return liteworp.PaperCoverage().DetectionCurve(3, 40, 1)
}

// Figure6b returns the analytic false-alarm curve vs NB.
func Figure6b() []analysis.CurvePoint {
	return liteworp.PaperCoverage().FalseAlarmCurve(3, 40, 1)
}

// RenderFigure6 prints both curves.
func RenderFigure6() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6(a): P(wormhole detection) vs neighbors (psi=7,k=5,gamma=3,Pc=0.05@NB=3)\n")
	for _, pt := range Figure6a() {
		if int(pt.X)%3 == 0 {
			fmt.Fprintf(&b, "  NB=%2.0f  P=%.4f\n", pt.X, pt.Y)
		}
	}
	fmt.Fprintf(&b, "Figure 6(b): P(false alarm) vs neighbors\n")
	for _, pt := range Figure6b() {
		if int(pt.X)%3 == 0 {
			fmt.Fprintf(&b, "  NB=%2.0f  P=%.2e\n", pt.X, pt.Y)
		}
	}
	return b.String()
}

// ChartFigure6 renders the coverage curves as ASCII charts.
func ChartFigure6() string {
	toXY := func(pts []analysis.CurvePoint) ([]float64, []float64) {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.X, p.Y
		}
		return xs, ys
	}
	ax, ay := toXY(Figure6a())
	bx, by := toXY(Figure6b())
	var b strings.Builder
	b.WriteString(textplot.Line([]textplot.Series{{Name: "P(wormhole detection)", X: ax, Y: ay}},
		textplot.Options{Title: "Figure 6(a): detection probability vs neighbors", XLabel: "NB", YLabel: "P"}))
	b.WriteString("\n")
	b.WriteString(textplot.Line([]textplot.Series{{Name: "P(false alarm)", X: bx, Y: by}},
		textplot.Options{Title: "Figure 6(b): false alarm probability vs neighbors", XLabel: "NB", YLabel: "P"}))
	return b.String()
}

// ChartFigure8 renders the cumulative drop curves as an ASCII chart.
func ChartFigure8(curves []Fig8Curve) string {
	series := make([]textplot.Series, 0, len(curves))
	for _, c := range curves {
		xs := make([]float64, len(c.Times))
		for i, t := range c.Times {
			xs[i] = t.Seconds()
		}
		series = append(series, textplot.Series{Name: c.Label, X: xs, Y: c.Dropped})
	}
	return textplot.Line(series, textplot.Options{
		Title:  "Figure 8: cumulative packets dropped (attack at +50s)",
		XLabel: "seconds into operational phase", YLabel: "packets",
	})
}

// ChartFigure10 renders detection vs gamma (simulated and analytic).
func ChartFigure10(rows []Fig10Row) string {
	gx := make([]float64, len(rows))
	sim := make([]float64, len(rows))
	ana := make([]float64, len(rows))
	for i, r := range rows {
		gx[i] = float64(r.Gamma)
		sim[i] = r.SimDetection.Mean
		ana[i] = r.AnaDetection
	}
	return textplot.Line([]textplot.Series{
		{Name: "simulated", X: gx, Y: sim},
		{Name: "analytic", X: gx, Y: ana},
	}, textplot.Options{
		Title:  "Figure 10: detection probability vs gamma",
		XLabel: "gamma", YLabel: "P(detect)",
	})
}

// ------------------------------------------------------------------ runs
//
// Every simulated figure is a campaign spec: it lays out the (Params,
// seed) jobs cell-major in a fixed order (the seed formulas are pinned —
// they anchor the golden output), hands them to internal/campaign for
// fan-out, and folds the results into streaming aggregators. The engine
// feeds the collect callback in job order whatever the worker count, so
// the aggregates below are bitwise independent of parallelism.

// Options configures how the simulated experiments execute. The zero
// value reproduces the historical sequential behavior.
type Options struct {
	// Workers is the campaign pool size; <= 1 runs sequentially.
	Workers int
	// CheckpointDir, when non-empty, stores one checkpoint file per
	// figure so an interrupted campaign resumes from completed seeds.
	CheckpointDir string
	// Progress, when non-nil, receives per-figure completion counts.
	Progress func(figure string, done, total int)

	// The supervision knobs below pass straight through to the campaign
	// runtime; see campaign.Options for their semantics. Wall-clock
	// hooks (Sleep, Elapsed) must be injected by the driver — this
	// package sits inside the determinism boundary and never reads the
	// clock itself.

	// Retries is the per-job retry count for failed runs.
	Retries int
	// Backoff is the deterministic capped-exponential retry schedule.
	Backoff campaign.Backoff
	// JobBudget bounds each run attempt in real and simulated time.
	JobBudget campaign.Budget
	// OnError selects FailFast or SkipFailed for permanently failed runs.
	OnError campaign.ErrorPolicy
	// Context requests graceful shutdown of the campaigns when cancelled.
	Context context.Context
	// Sleep paces retries and the stall watchdog (driver-injected clock).
	Sleep campaign.SleepFunc
	// Elapsed reads driver-injected real elapsed time for JobBudget.Real.
	Elapsed func() time.Duration
	// StallAfter arms the per-figure stall watchdog.
	StallAfter time.Duration
	// Notice receives supervision events, tagged with the figure. Like
	// campaign.Options.OnNotice it may be called concurrently.
	Notice func(figure string, n campaign.Notice)
	// Chaos injects runtime faults for robustness testing (never set in
	// production; the CI chaos job uses it via the driver).
	Chaos *campaign.Chaos
}

// campaignOptions adapts the experiment options to one figure's campaign.
func (o Options) campaignOptions(figure string) campaign.Options {
	copt := campaign.Options{
		Workers:    o.Workers,
		Retries:    o.Retries,
		Backoff:    o.Backoff,
		JobBudget:  o.JobBudget,
		OnError:    o.OnError,
		Context:    o.Context,
		Sleep:      o.Sleep,
		Elapsed:    o.Elapsed,
		StallAfter: o.StallAfter,
		Chaos:      o.Chaos,
	}
	if copt.Workers <= 0 {
		copt.Workers = 1
	}
	if o.CheckpointDir != "" {
		copt.Checkpoint = filepath.Join(o.CheckpointDir, strings.ToLower(figure)+".json")
	}
	if o.Progress != nil {
		copt.OnProgress = func(done, total int, _ bool) { o.Progress(figure, done, total) }
	}
	if o.Notice != nil {
		copt.OnNotice = func(n campaign.Notice) { o.Notice(figure, n) }
	}
	return copt
}

// detectionAgg accumulates the detection-centric outputs Figure 10 and
// the N sweep share: detection ratio, isolation latency over fully
// isolated attackers, and the dropped fraction.
type detectionAgg struct {
	det, lat, fd campaign.MeanVar
}

func (a *detectionAgg) add(r *liteworp.Results) {
	a.det.Add(r.DetectionRatio)
	a.fd.Add(r.FractionDropped)
	for _, m := range r.Malicious {
		if m.FullyIsolated {
			a.lat.Add(m.IsolationLatency.Seconds())
		}
	}
}

// -------------------------------------------------------------- Figure 8

// Fig8Curve is one cumulative-drop curve.
type Fig8Curve struct {
	Label    string
	M        int
	Liteworp bool
	// Times are offsets from the operational start; Dropped[i] is the
	// mean cumulative dropped count at Times[i] across runs.
	Times   []time.Duration
	Dropped []float64
}

// Figure8 reproduces the cumulative dropped-packets-over-time comparison:
// M in {2, 4} colluders, with and without LITEWORP, attack starting 50 s
// into the operational phase.
func Figure8(sc Scale, step time.Duration) ([]Fig8Curve, error) {
	return Figure8Opts(sc, step, Options{})
}

// Figure8Opts is Figure8 with explicit execution options.
func Figure8Opts(sc Scale, step time.Duration, opt Options) ([]Fig8Curve, error) {
	type cell struct {
		m  int
		lw bool
	}
	var cells []cell
	var jobs []campaign.Job
	for _, m := range []int{2, 4} {
		for _, lw := range []bool{false, true} {
			cells = append(cells, cell{m: m, lw: lw})
			for run := 0; run < sc.Runs; run++ {
				p := sc.params(int64(1000*m + run))
				p.NumMalicious = m
				p.Attack = liteworp.AttackOutOfBand
				p.Liteworp = lw
				jobs = append(jobs, campaign.Job{
					Key:    fmt.Sprintf("F8/M=%d/lw=%v/run=%d", m, lw, run),
					Params: p,
				})
			}
		}
	}
	curves := make([]*campaign.Curve, len(cells))
	for i := range curves {
		curves[i] = campaign.NewCurve(step, sc.Duration)
	}
	err := campaign.Run(jobs, opt.campaignOptions("F8"), func(i int, _ campaign.Job, r *liteworp.Results) error {
		curves[i/sc.Runs].Add(func(off time.Duration) float64 {
			return r.DroppedAt(r.OperationalStart + off)
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Curve, len(cells))
	for i, c := range cells {
		out[i] = Fig8Curve{
			Label:    fmt.Sprintf("M=%d %s", c.m, protoName(c.lw)),
			M:        c.m,
			Liteworp: c.lw,
			Times:    curves[i].Times(),
			Dropped:  curves[i].Means(),
		}
	}
	return out, nil
}

func protoName(lw bool) string {
	if lw {
		return "with LITEWORP"
	}
	return "without LITEWORP"
}

// RenderFigure8 prints the curves as aligned columns.
func RenderFigure8(curves []Fig8Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: cumulative packets dropped vs time (attack at +50s)\n")
	if len(curves) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%8s", "t")
	for _, c := range curves {
		fmt.Fprintf(&b, " %22s", c.Label)
	}
	fmt.Fprintf(&b, "\n")
	for i := range curves[0].Times {
		fmt.Fprintf(&b, "%7.0fs", curves[0].Times[i].Seconds())
		for _, c := range curves {
			fmt.Fprintf(&b, " %22.1f", c.Dropped[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// -------------------------------------------------------------- Figure 9

// Fig9Row is one (M, protection) cell of Figure 9.
type Fig9Row struct {
	M                int
	Liteworp         bool
	FractionDropped  metrics.Summary
	FractionWormhole metrics.Summary
	DetectionRatio   metrics.Summary
}

// Figure9 reproduces the fraction-of-packets-dropped and
// fraction-of-wormhole-routes snapshot for M = 0..4 colluders, with and
// without LITEWORP.
func Figure9(sc Scale) ([]Fig9Row, error) {
	return Figure9Opts(sc, Options{})
}

// Figure9Opts is Figure9 with explicit execution options.
func Figure9Opts(sc Scale, opt Options) ([]Fig9Row, error) {
	type cell struct {
		m  int
		lw bool
	}
	var cells []cell
	var jobs []campaign.Job
	for m := 0; m <= 4; m++ {
		for _, lw := range []bool{false, true} {
			cells = append(cells, cell{m: m, lw: lw})
			for run := 0; run < sc.Runs; run++ {
				p := sc.params(int64(2000*m + 10*run + 1))
				p.NumMalicious = m
				if m == 0 {
					p.Attack = liteworp.AttackNone
				} else if m == 1 {
					// A lone colluder cannot form a two-ended tunnel;
					// the paper notes M=1 creates no wormhole. Use the
					// relay mode (min 1 node) to exercise the check.
					p.Attack = liteworp.AttackRelay
				} else {
					p.Attack = liteworp.AttackOutOfBand
				}
				p.Liteworp = lw
				jobs = append(jobs, campaign.Job{
					Key:    fmt.Sprintf("F9/M=%d/lw=%v/run=%d", m, lw, run),
					Params: p,
				})
			}
		}
	}
	aggs := make([]struct{ fd, fw, det campaign.MeanVar }, len(cells))
	err := campaign.Run(jobs, opt.campaignOptions("F9"), func(i int, _ campaign.Job, r *liteworp.Results) error {
		a := &aggs[i/sc.Runs]
		a.fd.Add(r.FractionDropped)
		a.fw.Add(r.FractionWormhole)
		a.det.Add(r.DetectionRatio)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(cells))
	for i, c := range cells {
		rows[i] = Fig9Row{
			M:                c.m,
			Liteworp:         c.lw,
			FractionDropped:  aggs[i].fd.Summary(),
			FractionWormhole: aggs[i].fw.Summary(),
			DetectionRatio:   aggs[i].det.Summary(),
		}
	}
	return rows, nil
}

// RenderFigure9 prints the rows.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: fraction dropped / fraction wormhole routes vs M\n")
	fmt.Fprintf(&b, "%3s %-18s %16s %18s %12s\n", "M", "protocol", "frac dropped", "frac worm routes", "detection")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d %-18s %16.4f %18.4f %12.2f\n",
			r.M, protoName(r.Liteworp), r.FractionDropped.Mean, r.FractionWormhole.Mean, r.DetectionRatio.Mean)
	}
	return b.String()
}

// ------------------------------------------------------------- Figure 10

// Fig10Row is one gamma setting of Figure 10.
type Fig10Row struct {
	Gamma int
	// SimDetection is the fraction of attackers fully isolated across
	// runs; AnaDetection is the coverage-analysis prediction.
	SimDetection     metrics.Summary
	AnaDetection     float64
	IsolationLatency metrics.Summary // seconds, over fully isolated attackers
}

// Figure10 sweeps gamma and reports simulated detection probability and
// isolation latency against the analytic curve (at NB = 15 in the paper;
// we keep the scenario's density and evaluate the analysis at the same
// neighbor count).
func Figure10(sc Scale, gammas []int) ([]Fig10Row, error) {
	return Figure10Opts(sc, gammas, Options{})
}

// Figure10Opts is Figure10 with explicit execution options.
func Figure10Opts(sc Scale, gammas []int, opt Options) ([]Fig10Row, error) {
	if len(gammas) == 0 {
		gammas = []int{2, 3, 4, 5, 6, 7, 8}
	}
	var jobs []campaign.Job
	for _, g := range gammas {
		for run := 0; run < sc.Runs; run++ {
			p := sc.params(int64(3000*g + 10*run + 7))
			p.NumMalicious = 2
			p.Attack = liteworp.AttackOutOfBand
			p.Gamma = g
			jobs = append(jobs, campaign.Job{
				Key:    fmt.Sprintf("F10/gamma=%d/run=%d", g, run),
				Params: p,
			})
		}
	}
	aggs := make([]detectionAgg, len(gammas))
	err := campaign.Run(jobs, opt.campaignOptions("F10"), func(i int, _ campaign.Job, r *liteworp.Results) error {
		aggs[i/sc.Runs].add(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cov := liteworp.PaperCoverage()
	rows := make([]Fig10Row, len(gammas))
	for i, g := range gammas {
		cg := cov
		cg.Gamma = g
		rows[i] = Fig10Row{
			Gamma:            g,
			SimDetection:     aggs[i].det.Summary(),
			AnaDetection:     cg.DetectionVsNeighbors(15),
			IsolationLatency: aggs[i].lat.Summary(),
		}
	}
	return rows, nil
}

// RenderFigure10 prints the rows.
func RenderFigure10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: detection probability and isolation latency vs gamma\n")
	fmt.Fprintf(&b, "%6s %14s %14s %22s\n", "gamma", "sim P(detect)", "ana P(detect)", "isolation latency (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14.3f %14.3f %22.2f\n",
			r.Gamma, r.SimDetection.Mean, r.AnaDetection, r.IsolationLatency.Mean)
	}
	return b.String()
}

// ------------------------------------------------------------------ cost

// RenderCost prints the §5.2 cost analysis.
func RenderCost() string {
	c := liteworp.PaperCostModel()
	r := c.Report()
	var b strings.Builder
	fmt.Fprintf(&b, "Cost analysis (paper 5.2, N=100, h=4, f=1/4, NB=10)\n")
	fmt.Fprintf(&b, "neighbor count NB            = %.1f\n", r.NeighborCount)
	fmt.Fprintf(&b, "two-hop neighbor storage     = %.0f B (< 0.5 KB)\n", r.NeighborListBytes)
	fmt.Fprintf(&b, "alert buffer                 = %.0f B\n", r.AlertBufferBytes)
	fmt.Fprintf(&b, "nodes watching each REP      = %.1f\n", r.NodesPerReply)
	fmt.Fprintf(&b, "packets watched per unit     = %.3f\n", r.PacketsWatchedRate)
	fmt.Fprintf(&b, "steady watch buffer          = %.2f entries (%.0f B)\n", r.WatchEntries, r.WatchBufferBytes)
	fmt.Fprintf(&b, "total LITEWORP memory        = %.0f B\n", r.TotalMemoryBytes)
	return b.String()
}

// ----------------------------------------------------------- N sweep

// NSweepRow is one network size of the detection-across-sizes sweep.
type NSweepRow struct {
	N                int
	Detection        metrics.Summary
	IsolationLatency metrics.Summary // seconds
	FractionDropped  metrics.Summary
}

// NSweep reproduces the paper's claim that "every wormhole is detected and
// isolated within a very short period of time over a large range of
// scenarios": the Table 2 network sizes N in {20, 50, 100, 150} under the
// out-of-band wormhole with LITEWORP.
func NSweep(sc Scale, sizes []int) ([]NSweepRow, error) {
	return NSweepOpts(sc, sizes, Options{})
}

// NSweepOpts is NSweep with explicit execution options.
func NSweepOpts(sc Scale, sizes []int, opt Options) ([]NSweepRow, error) {
	if len(sizes) == 0 {
		sizes = []int{20, 50, 100, 150}
	}
	var jobs []campaign.Job
	for _, n := range sizes {
		for run := 0; run < sc.Runs; run++ {
			p := sc.params(int64(5000*n + 10*run + 3))
			p.NumNodes = n
			p.NumMalicious = 2
			p.Attack = liteworp.AttackOutOfBand
			jobs = append(jobs, campaign.Job{
				Key:    fmt.Sprintf("N1/N=%d/run=%d", n, run),
				Params: p,
			})
		}
	}
	aggs := make([]detectionAgg, len(sizes))
	err := campaign.Run(jobs, opt.campaignOptions("N1"), func(i int, _ campaign.Job, r *liteworp.Results) error {
		aggs[i/sc.Runs].add(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]NSweepRow, len(sizes))
	for i, n := range sizes {
		rows[i] = NSweepRow{
			N:                n,
			Detection:        aggs[i].det.Summary(),
			IsolationLatency: aggs[i].lat.Summary(),
			FractionDropped:  aggs[i].fd.Summary(),
		}
	}
	return rows, nil
}

// ------------------------------------------- detector comparison (D1)

// DetectorCell is one (detector, M) cell of the detector-comparison
// campaign: the same seeded attacks watched by one detection strategy.
type DetectorCell struct {
	Detector string
	M        int
	// Detection is the fraction of attackers fully isolated per run (the
	// detection-probability curve's Y axis).
	Detection metrics.Summary
	// FirstIsolation is seconds from attack start to the first isolation
	// verdict, over the runs that detected anything (isolation latency).
	FirstIsolation metrics.Summary
	// FalseAccusations and FalselyIsolated are the per-run false-positive
	// costs: accusations against honest nodes and distinct honest nodes
	// isolated by at least one observer.
	FalseAccusations metrics.Summary
	FalselyIsolated  metrics.Summary
	// FractionDropped shows what the attack still cost under each
	// strategy's response.
	FractionDropped metrics.Summary
}

// DetectorComparison races detection strategies under identical seeds,
// topologies, and out-of-band wormhole attacks: every cell with the same
// M replays byte-identical radio schedules up to each strategy's first
// isolation, so the curves differ only through what gets accused. Empty
// inputs default to every registered strategy and the paper's M in {2, 4}.
func DetectorComparison(sc Scale, detectors []string, ms []int) ([]DetectorCell, error) {
	return DetectorComparisonOpts(sc, detectors, ms, Options{})
}

// DetectorComparisonOpts is DetectorComparison with explicit execution
// options.
func DetectorComparisonOpts(sc Scale, detectors []string, ms []int, opt Options) ([]DetectorCell, error) {
	if len(detectors) == 0 {
		detectors = detector.Names()
	}
	if len(ms) == 0 {
		ms = []int{2, 4}
	}
	type cell struct {
		det string
		m   int
	}
	var cells []cell
	var jobs []campaign.Job
	for _, d := range detectors {
		for _, m := range ms {
			cells = append(cells, cell{det: d, m: m})
			for run := 0; run < sc.Runs; run++ {
				// The seed must not depend on the detector: equal (M, run)
				// means equal topology, traffic, and attack across
				// strategies — that is what makes the race fair.
				p := sc.params(int64(23000*m + 10*run + 1))
				p.NumMalicious = m
				p.Attack = liteworp.AttackOutOfBand
				p.Detector = d
				jobs = append(jobs, campaign.Job{
					Key:    fmt.Sprintf("D1/%s/M=%d/run=%d", d, m, run),
					Params: p,
				})
			}
		}
	}
	aggs := make([]struct{ det, lat, fa, fi, fd campaign.MeanVar }, len(cells))
	err := campaign.Run(jobs, opt.campaignOptions("D1"), func(i int, _ campaign.Job, r *liteworp.Results) error {
		a := &aggs[i/sc.Runs]
		a.det.Add(r.DetectionRatio)
		if r.Detector.Detected {
			a.lat.Add(r.Detector.TimeToFirstIsolation.Seconds())
		}
		a.fa.Add(float64(r.Detector.FalseAccusations))
		a.fi.Add(float64(r.Detector.FalselyIsolatedNodes))
		a.fd.Add(r.FractionDropped)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]DetectorCell, len(cells))
	for i, c := range cells {
		out[i] = DetectorCell{
			Detector:         detector.Canonical(c.det),
			M:                c.m,
			Detection:        aggs[i].det.Summary(),
			FirstIsolation:   aggs[i].lat.Summary(),
			FalseAccusations: aggs[i].fa.Summary(),
			FalselyIsolated:  aggs[i].fi.Summary(),
			FractionDropped:  aggs[i].fd.Summary(),
		}
	}
	return out, nil
}

// RenderDetectorComparison prints the cells.
func RenderDetectorComparison(cells []DetectorCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detector comparison: OOB wormhole under identical seeds\n")
	fmt.Fprintf(&b, "%-10s %3s %12s %18s %12s %14s %14s\n",
		"detector", "M", "P(detect)", "first isol (s)", "false acc", "false isol", "frac dropped")
	for _, c := range cells {
		first := "-"
		if c.FirstIsolation.HasValues {
			first = fmt.Sprintf("%.2f", c.FirstIsolation.Mean)
		}
		fmt.Fprintf(&b, "%-10s %3d %12.3f %18s %12.2f %14.2f %14.4f\n",
			c.Detector, c.M, c.Detection.Mean, first,
			c.FalseAccusations.Mean, c.FalselyIsolated.Mean, c.FractionDropped.Mean)
	}
	return b.String()
}

// RenderNSweep prints the rows.
func RenderNSweep(rows []NSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection across network sizes (OOB wormhole, M=2, with LITEWORP)\n")
	fmt.Fprintf(&b, "%6s %12s %20s %16s\n", "N", "P(detect)", "isolation (s)", "frac dropped")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12.3f %20.2f %16.4f\n",
			r.N, r.Detection.Mean, r.IsolationLatency.Mean, r.FractionDropped.Mean)
	}
	return b.String()
}
