package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tiny is an even faster scale for unit tests.
var tiny = Scale{Runs: 2, Nodes: 40, Duration: 200 * time.Second}

// TestScaleParamsShareOneBase guards the satellite contract that Quick
// and Paper derive from one parameter base: layering the scales over the
// same seed must differ in nothing but the declared size knobs, so a new
// Params field cannot silently drift between them.
func TestScaleParamsShareOneBase(t *testing.T) {
	q, p := Quick.params(42), Paper.params(42)
	q.NumNodes, p.NumNodes = 0, 0
	q.Duration, p.Duration = 0, 0
	if q != p {
		t.Fatalf("Quick and Paper params diverge beyond Nodes/Duration:\nquick: %+v\npaper: %+v", q, p)
	}
	if Quick.Runs == Paper.Runs {
		t.Fatal("scales should still differ in their size knobs")
	}
}

// TestCampaignMatchesSequential runs one figure through the campaign
// engine at workers=1 and workers=8: the returned rows must be deeply
// equal, including every Summary statistic.
func TestCampaignMatchesSequential(t *testing.T) {
	gammas := []int{2, 6}
	seq, err := Figure10Opts(tiny, gammas, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure10Opts(tiny, gammas, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Figure 10 rows depend on worker count:\nworkers=1: %+v\nworkers=8: %+v", seq, par)
	}
}

// TestFigureCheckpointResume exercises the Options plumbing end to end:
// a checkpointed figure rerun restores every seed and reproduces the
// first result exactly.
func TestFigureCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Workers: 2, CheckpointDir: dir}
	var calls int
	opt.Progress = func(figure string, done, total int) {
		if figure != "F8" {
			t.Errorf("progress for %q, want F8", figure)
		}
		calls++
	}
	first, err := Figure8Opts(tiny, 100*time.Second, opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no progress reported")
	}
	if _, err := os.Stat(filepath.Join(dir, "f8.json")); err != nil {
		t.Fatalf("per-figure checkpoint missing: %v", err)
	}
	resumed, err := Figure8Opts(tiny, 100*time.Second, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Fatal("checkpoint resume changed the Figure 8 curves")
	}
}

func TestTable1HasFiveModes(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	handled := 0
	for _, r := range rows {
		if r.HandledByLiteworp {
			handled++
		}
	}
	if handled != 4 {
		t.Fatalf("LITEWORP should handle 4 of 5 modes, got %d", handled)
	}
	if out := RenderTable1(); !strings.Contains(out, "Packet encapsulation") {
		t.Fatal("render missing encapsulation row")
	}
}

func TestTable2CoversPaperParameters(t *testing.T) {
	rows := Table2()
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Value == "" {
			t.Fatalf("empty value for %s", r.Name)
		}
	}
	for _, want := range []string{"Tx range (r)", "TOutRoute", "lambda (data rate)", "Channel bandwidth"} {
		if !names[want] {
			t.Fatalf("Table 2 missing %q", want)
		}
	}
	if out := RenderTable2(); !strings.Contains(out, "30 m") {
		t.Fatal("render missing range value")
	}
}

func TestFigure5Geometry(t *testing.T) {
	res := Figure5(30, 8)
	g := res.Geometry
	// A(x)/r^2 decreasing from pi to ~1.228 at x=r.
	if len(res.AreaCurve) != 21 {
		t.Fatalf("curve points = %d", len(res.AreaCurve))
	}
	first, last := res.AreaCurve[0], res.AreaCurve[len(res.AreaCurve)-1]
	if first.Y < 3.14 || first.Y > 3.15 {
		t.Fatalf("A(0)/r^2 = %g, want pi", first.Y)
	}
	if last.Y < 1.22 || last.Y > 1.24 {
		t.Fatalf("A(r)/r^2 = %g, want ~1.228", last.Y)
	}
	if g.NeighborCount < 7.9 || g.NeighborCount > 8.1 {
		t.Fatalf("NB = %g", g.NeighborCount)
	}
	if g.ExpectedGuards <= g.MinGuards {
		t.Fatal("expected guards should exceed minimum guards")
	}
	if out := RenderFigure5(); !strings.Contains(out, "guards per neighbor") {
		t.Fatal("render incomplete")
	}
}

func TestFigure6Curves(t *testing.T) {
	a := Figure6a()
	bcurve := Figure6b()
	if len(a) == 0 || len(bcurve) == 0 {
		t.Fatal("empty curves")
	}
	var peak float64
	for _, pt := range a {
		if pt.Y > peak {
			peak = pt.Y
		}
	}
	if peak < 0.8 {
		t.Fatalf("Fig 6a peak = %g", peak)
	}
	for _, pt := range bcurve {
		if pt.Y > 2e-3 {
			t.Fatalf("Fig 6b false alarm %g at NB=%g not negligible", pt.Y, pt.X)
		}
	}
	if out := RenderFigure6(); !strings.Contains(out, "6(a)") || !strings.Contains(out, "6(b)") {
		t.Fatal("render incomplete")
	}
}

func TestFigure8Shape(t *testing.T) {
	curves, err := Figure8(tiny, 50*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	byLabel := map[string]Fig8Curve{}
	for _, c := range curves {
		byLabel[c.Label] = c
		// Monotone nondecreasing cumulative counts.
		for i := 1; i < len(c.Dropped); i++ {
			if c.Dropped[i] < c.Dropped[i-1] {
				t.Fatalf("%s: cumulative decreased at %v", c.Label, c.Times[i])
			}
		}
	}
	// Shape: baseline curves keep growing; LITEWORP curves plateau after
	// isolation. Compare late-phase growth.
	for _, m := range []string{"M=2", "M=4"} {
		base := byLabel[m+" without LITEWORP"]
		lw := byLabel[m+" with LITEWORP"]
		n := len(base.Dropped)
		if n < 3 {
			t.Fatal("too few samples")
		}
		baseFinal := base.Dropped[n-1]
		lwFinal := lw.Dropped[n-1]
		if baseFinal == 0 {
			t.Fatalf("%s baseline dropped nothing", m)
		}
		if lwFinal >= baseFinal {
			t.Fatalf("%s: LITEWORP final drops %.1f >= baseline %.1f", m, lwFinal, baseFinal)
		}
		// LITEWORP late growth (last third) must be a small share of its
		// total — the plateau.
		lwLate := lw.Dropped[n-1] - lw.Dropped[2*n/3]
		if lwFinal > 0 && lwLate/lwFinal > 0.35 {
			t.Fatalf("%s: LITEWORP curve still growing late (%.1f of %.1f)", m, lwLate, lwFinal)
		}
	}
	if out := RenderFigure8(curves); !strings.Contains(out, "Figure 8") {
		t.Fatal("render incomplete")
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(m int, lw bool) Fig9Row {
		for _, r := range rows {
			if r.M == m && r.Liteworp == lw {
				return r
			}
		}
		t.Fatalf("row M=%d lw=%v missing", m, lw)
		return Fig9Row{}
	}
	// M=0: no damage either way.
	if get(0, false).FractionDropped.Mean != 0 || get(0, true).FractionDropped.Mean != 0 {
		t.Fatal("M=0 shows attack damage")
	}
	// Baseline: wormholes capture routes and drop packets for M>=2.
	for _, m := range []int{2, 4} {
		b := get(m, false)
		if b.FractionDropped.Mean == 0 || b.FractionWormhole.Mean == 0 {
			t.Fatalf("baseline M=%d shows no damage: %+v", m, b)
		}
		l := get(m, true)
		if l.FractionDropped.Mean >= b.FractionDropped.Mean {
			t.Fatalf("M=%d: LITEWORP dropped fraction %.4f >= baseline %.4f",
				m, l.FractionDropped.Mean, b.FractionDropped.Mean)
		}
		if l.DetectionRatio.Mean < 0.5 {
			t.Fatalf("M=%d detection ratio %.2f", m, l.DetectionRatio.Mean)
		}
	}
	// Baseline damage grows with M (2 -> 4).
	if get(4, false).FractionDropped.Mean <= get(2, false).FractionDropped.Mean*0.5 {
		t.Fatalf("baseline damage does not grow with M: M=2 %.4f, M=4 %.4f",
			get(2, false).FractionDropped.Mean, get(4, false).FractionDropped.Mean)
	}
	if out := RenderFigure9(rows); !strings.Contains(out, "Figure 9") {
		t.Fatal("render incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(tiny, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Analytic detection decreases with gamma.
	for i := 1; i < len(rows); i++ {
		if rows[i].AnaDetection > rows[i-1].AnaDetection+1e-9 {
			t.Fatal("analytic detection increased with gamma")
		}
	}
	// Low gamma: simulation detects essentially always, latency small.
	if rows[0].SimDetection.Mean < 0.5 {
		t.Fatalf("gamma=2 sim detection = %.2f", rows[0].SimDetection.Mean)
	}
	if rows[0].IsolationLatency.HasValues && rows[0].IsolationLatency.Mean > 60 {
		t.Fatalf("gamma=2 isolation latency = %.1fs", rows[0].IsolationLatency.Mean)
	}
	if out := RenderFigure10(rows); !strings.Contains(out, "Figure 10") {
		t.Fatal("render incomplete")
	}
}

func TestRenderCost(t *testing.T) {
	out := RenderCost()
	for _, want := range []string{"neighbor count", "watch buffer", "total LITEWORP memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost render missing %q:\n%s", want, out)
		}
	}
}

func TestChartsRender(t *testing.T) {
	if out := ChartFigure6(); !strings.Contains(out, "6(a)") || !strings.Contains(out, "6(b)") {
		t.Fatal("figure 6 charts incomplete")
	}
	curves, err := Figure8(tiny, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out := ChartFigure8(curves); !strings.Contains(out, "Figure 8") || !strings.Contains(out, "M=2") {
		t.Fatal("figure 8 chart incomplete")
	}
	rows, err := Figure10(tiny, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if out := ChartFigure10(rows); !strings.Contains(out, "simulated") || !strings.Contains(out, "analytic") {
		t.Fatal("figure 10 chart incomplete")
	}
}

func TestNSweepDetectsEverywhere(t *testing.T) {
	rows, err := NSweep(Scale{Runs: 1, Nodes: 0, Duration: 200 * time.Second}, []int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Detection.Mean < 0.5 {
			t.Fatalf("N=%d detection = %.2f", r.N, r.Detection.Mean)
		}
		if r.IsolationLatency.HasValues && r.IsolationLatency.Mean > 90 {
			t.Fatalf("N=%d isolation latency = %.1fs", r.N, r.IsolationLatency.Mean)
		}
	}
	if out := RenderNSweep(rows); !strings.Contains(out, "network sizes") {
		t.Fatal("render incomplete")
	}
}

// TestDetectorCampaignMatchesSequential runs the detector comparison at
// workers=1 and workers=8: identical seeds must yield bitwise-equal
// aggregates per detector whatever the parallelism.
func TestDetectorCampaignMatchesSequential(t *testing.T) {
	detectors := []string{"liteworp", "none"}
	seq, err := DetectorComparisonOpts(tiny, detectors, []int{2}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := DetectorComparisonOpts(tiny, detectors, []int{2}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("detector cells depend on worker count:\nworkers=1: %+v\nworkers=8: %+v", seq, par)
	}
}

// TestDetectorComparisonRacesAllStrategies checks the campaign covers
// every requested strategy under identical attacks and that the reference
// strategy detects while the null strategy never accuses.
func TestDetectorComparisonRacesAllStrategies(t *testing.T) {
	detectors := []string{"liteworp", "none", "range", "zscore"}
	cells, err := DetectorComparison(tiny, detectors, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(detectors) {
		t.Fatalf("cells = %d, want %d", len(cells), len(detectors))
	}
	byDet := make(map[string]DetectorCell, len(cells))
	for _, c := range cells {
		byDet[c.Detector] = c
		if c.M != 2 {
			t.Fatalf("cell M = %d", c.M)
		}
	}
	if byDet["liteworp"].Detection.Mean == 0 {
		t.Fatalf("reference strategy detected nothing: %+v", byDet["liteworp"])
	}
	if none := byDet["none"]; none.Detection.Mean != 0 || none.FalseAccusations.Mean != 0 {
		t.Fatalf("null strategy produced detections: %+v", none)
	}
	if out := RenderDetectorComparison(cells); !strings.Contains(out, "liteworp") || !strings.Contains(out, "zscore") {
		t.Fatal("render incomplete")
	}
}
