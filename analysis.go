package liteworp

import (
	"liteworp/internal/analysis"
	"liteworp/internal/field"
)

// Coverage is the paper's §5.1 coverage-analysis model (Figures 6(a),
// 6(b), and the analytic curve of Figure 10).
type Coverage = analysis.CoverageParams

// CostModel is the paper's §5.2 cost-analysis model.
type CostModel = analysis.CostParams

// CostReport is an evaluated cost model.
type CostReport = analysis.CostReport

// CurvePoint is one (x, y) sample of an analytic curve.
type CurvePoint = analysis.CurvePoint

// PaperCoverage returns the coverage parameters used for Figures 6(a) and
// 6(b): psi=7 fabrications per window, k=5 per-guard detections, gamma=3,
// Pc=0.05 at NB=3 growing linearly.
func PaperCoverage() Coverage { return analysis.PaperCoverageParams() }

// PaperCostModel returns the §5.2 example cost parameters (N=100, h=4,
// f=1/4, ~10 neighbors).
func PaperCostModel() CostModel { return analysis.PaperCostParams() }

// GuardGeometry summarizes the Figure 5 lens geometry at communication
// range r (meters) and node density d (nodes per square meter).
type GuardGeometry struct {
	// MinArea is the guard region at the maximum link length x = r.
	MinArea float64
	// ExpectedArea is E[A(x)] under the random-link-length distribution
	// f(x) = 2x/r^2 (exact integral ~1.84 r^2; the paper rounds to 1.6).
	ExpectedArea float64
	// MinGuards and ExpectedGuards multiply the areas by the density.
	MinGuards      float64
	ExpectedGuards float64
	// NeighborCount is NB = pi r^2 d.
	NeighborCount float64
	// GuardsPerNeighborExact is ExpectedArea / (pi r^2) (~0.59);
	// GuardsPerNeighborPaper is the published 0.51 of Equation (I).
	GuardsPerNeighborExact float64
	GuardsPerNeighborPaper float64
}

// AnalyzeGuardGeometry evaluates the Figure 5 quantities.
func AnalyzeGuardGeometry(r, density float64) GuardGeometry {
	return GuardGeometry{
		MinArea:                field.MinGuardArea(r),
		ExpectedArea:           field.ExpectedGuardArea(r),
		MinGuards:              field.MinGuards(r, density),
		ExpectedGuards:         field.ExpectedGuards(r, density),
		NeighborCount:          field.ExpectedNeighbors(r, density),
		GuardsPerNeighborExact: field.GuardsFromNeighbors(1),
		GuardsPerNeighborPaper: field.PaperGuardRatio,
	}
}

// LensArea returns the guard-region area for a link of length x at range r
// (Figure 5's A(x)).
func LensArea(x, r float64) float64 { return field.LensArea(x, r) }
